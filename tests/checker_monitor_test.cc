// Tests for the incremental monitor: equivalence with the batch checker on
// random update streams, permanence of violations, eager vs lazy modes, and
// catch-up for newly relevant elements.

#include <gtest/gtest.h>

#include <random>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "fotl/parser.h"

namespace tic {
namespace checker {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    submit_once_ = *fotl::Parse(fac_.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
    fifo_ = *fotl::Parse(
        fac_.get(),
        "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
        "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills,
                  std::vector<Value> unsubs = {}, std::vector<Value> unfills = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    for (Value v : unsubs) t.push_back(UpdateOp::Delete(sub_, {v}));
    for (Value v : unfills) t.push_back(UpdateOp::Delete(fill_, {v}));
    return t;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
  fotl::Formula submit_once_ = nullptr;
  fotl::Formula fifo_ = nullptr;
};

TEST_F(MonitorTest, CreateValidatesTheFragment) {
  auto bad1 = Monitor::Create(fac_, *fotl::Parse(fac_.get(), "exists x . G Sub(x)"));
  EXPECT_TRUE(bad1.status().IsNotSupported());
  auto bad2 = Monitor::Create(fac_, *fotl::Parse(fac_.get(), "Sub(x)"));
  EXPECT_TRUE(bad2.status().IsInvalidArgument());
  auto bad3 =
      Monitor::Create(fac_, *fotl::Parse(fac_.get(), "forall x . F Sub(x)"));
  EXPECT_TRUE(bad3.status().IsNotSupported());  // safety gate on the skeleton
  auto ok = Monitor::Create(fac_, submit_once_);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(MonitorTest, DetectsViolationAtEarliestTime) {
  auto m = *Monitor::Create(fac_, submit_once_);
  auto v0 = m->ApplyTransaction(Txn({7}, {}));
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(v0->potentially_satisfied);
  // Deleting and re-inserting the same order in one later state violates.
  auto v1 = m->ApplyTransaction(Txn({}, {}, {7}));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->potentially_satisfied);
  auto v2 = m->ApplyTransaction(Txn({7}, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->potentially_satisfied);
  EXPECT_TRUE(v2->permanently_violated);
  // Dead stays dead.
  auto v3 = m->ApplyTransaction(Txn({}, {}, {7}));
  ASSERT_TRUE(v3.ok());
  EXPECT_TRUE(v3->permanently_violated);
}

TEST_F(MonitorTest, SameStateRepetitionIsNotResubmission) {
  // Sub(7) persisting across states is a single submission interval under the
  // paper's semantics? No — Sub(7) true at t=0 and t=1 violates
  // "Sub(x) -> X G !Sub(x)" at t=0. The monitor must flag it.
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_TRUE(m->ApplyTransaction(Txn({7}, {})).ok());
  auto v = m->ApplyTransaction({});  // copy of last state: Sub(7) still true
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->potentially_satisfied);
}

TEST_F(MonitorTest, InstanceCatchUpForFreshElements) {
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_TRUE(m->ApplyTransaction(Txn({1}, {}, {})).ok());
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {}, {1})).ok());
  // Element 2 appears at t=2; its instance must be progressed through the
  // whole history (where Sub(2) was false).
  auto v = m->ApplyTransaction(Txn({2}, {}));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->potentially_satisfied);
  EXPECT_EQ(v->num_instances, 3u);  // {1, 2, z1}
  // Resubmitting 2 later is caught by the caught-up instance.
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {}, {2})).ok());
  auto v2 = m->ApplyTransaction(Txn({2}, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->potentially_satisfied);
}

TEST_F(MonitorTest, LazyModeDetectsLateButSurely) {
  // For submit-once, progression alone already collapses to false on the
  // violating state (the constraint is "present-detectable"), so lazy mode
  // detects at the same instant here; the difference is it never runs the
  // exponential check.
  auto eager = *Monitor::Create(fac_, submit_once_, {}, {}, MonitorMode::kEager);
  auto lazy = *Monitor::Create(fac_, submit_once_, {}, {}, MonitorMode::kLazy);
  std::vector<Transaction> txns = {Txn({7}, {}), Txn({}, {}, {7}), Txn({7}, {})};
  for (const auto& t : txns) {
    auto ve = eager->ApplyTransaction(t);
    auto vl = lazy->ApplyTransaction(t);
    ASSERT_TRUE(ve.ok());
    ASSERT_TRUE(vl.ok());
    EXPECT_EQ(ve->permanently_violated, vl->permanently_violated);
    EXPECT_EQ(vl->tableau_stats.num_states, 0u);  // lazy never builds a tableau
  }
}

TEST_F(MonitorTest, AgreesWithBatchCheckerOnRandomStreams) {
  for (int seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(seed);
    auto m = *Monitor::Create(fac_, fifo_);
    History reference = *History::Create(vocab_);
    bool batch_dead = false;
    for (int step = 0; step < 6; ++step) {
      std::vector<Value> subs, fills;
      if (rng() % 2) subs.push_back(1 + rng() % 3);
      if (rng() % 2) fills.push_back(1 + rng() % 3);
      Transaction txn = Txn(subs, fills);
      auto verdict = m->ApplyTransaction(txn);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      ASSERT_TRUE(ApplyTransaction(&reference, txn).ok());
      auto batch = CheckPotentialSatisfaction(*fac_, fifo_, reference);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      batch_dead = !batch->potentially_satisfied;
      EXPECT_EQ(verdict->potentially_satisfied, batch->potentially_satisfied)
          << "seed " << seed << " step " << step;
      EXPECT_EQ(verdict->permanently_violated, batch_dead);
    }
  }
}

TEST_F(MonitorTest, HistoryAccessor) {
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_TRUE(m->ApplyTransaction(Txn({4}, {})).ok());
  EXPECT_EQ(m->history().length(), 1u);
  EXPECT_TRUE(m->history().state(0).Holds(sub_, {4}));
  EXPECT_EQ(m->last_verdict().time, 0u);
}

TEST_F(MonitorTest, HistoryLessModeMatchesEagerOnRandomStreams) {
  // The history-less monitor (Section 6's open question, answered by renaming
  // stand-in residuals) must produce verdicts identical to the replaying
  // eager monitor — including across fresh-element arrivals and deletions.
  for (fotl::Formula phi : {submit_once_, fifo_}) {
    for (int seed = 0; seed < 10; ++seed) {
      std::mt19937 rng(31337 + seed);
      auto eager =
          *Monitor::Create(fac_, phi, {}, {}, MonitorMode::kEager);
      auto hless =
          *Monitor::Create(fac_, phi, {}, {}, MonitorMode::kEagerHistoryLess);
      for (int step = 0; step < 7; ++step) {
        std::vector<Value> subs, fills, unsubs;
        if (rng() % 2) subs.push_back(1 + rng() % 4);
        if (rng() % 2) fills.push_back(1 + rng() % 4);
        if (rng() % 3 == 0) unsubs.push_back(1 + rng() % 4);
        Transaction txn = Txn(subs, fills, unsubs);
        auto ve = eager->ApplyTransaction(txn);
        auto vh = hless->ApplyTransaction(txn);
        ASSERT_TRUE(ve.ok()) << ve.status().ToString();
        ASSERT_TRUE(vh.ok()) << vh.status().ToString();
        EXPECT_EQ(ve->potentially_satisfied, vh->potentially_satisfied)
            << "seed " << seed << " step " << step;
        EXPECT_EQ(ve->permanently_violated, vh->permanently_violated);
      }
    }
  }
}

TEST_F(MonitorTest, HistoryLessFreshElementCatchUp) {
  // Element 9 appears late; its instance must behave as if progressed through
  // the whole history — but is derived purely by renaming.
  auto m = *Monitor::Create(fac_, submit_once_, {}, {},
                            MonitorMode::kEagerHistoryLess);
  ASSERT_TRUE(m->ApplyTransaction(Txn({1}, {})).ok());
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {}, {1})).ok());
  auto v = m->ApplyTransaction(Txn({9}, {}));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->potentially_satisfied);
  // Resubmitting 9 later is caught by the renamed instance.
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {}, {9})).ok());
  auto v2 = m->ApplyTransaction(Txn({9}, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->potentially_satisfied);
  EXPECT_TRUE(v2->permanently_violated);
}

TEST_F(MonitorTest, AllModesAgreeOnNewElementCatchUpViolation) {
  // A fresh element (2) arrives mid-stream, gets caught up through the
  // history, and later violates submit-once. All three modes must agree on
  // permanence at every step; lazy agrees here because the violation is
  // present-detectable (progression alone collapses to false).
  auto eager = *Monitor::Create(fac_, submit_once_, {}, {}, MonitorMode::kEager);
  auto lazy = *Monitor::Create(fac_, submit_once_, {}, {}, MonitorMode::kLazy);
  auto hless = *Monitor::Create(fac_, submit_once_, {}, {},
                                MonitorMode::kEagerHistoryLess);
  std::vector<Transaction> txns = {
      Txn({1}, {}),         Txn({}, {}, {1}), Txn({2}, {}),
      Txn({}, {}, {2}),     Txn({2}, {}),  // resubmission: permanent violation
  };
  for (size_t step = 0; step < txns.size(); ++step) {
    auto ve = eager->ApplyTransaction(txns[step]);
    auto vl = lazy->ApplyTransaction(txns[step]);
    auto vh = hless->ApplyTransaction(txns[step]);
    ASSERT_TRUE(ve.ok()) << ve.status().ToString();
    ASSERT_TRUE(vl.ok()) << vl.status().ToString();
    ASSERT_TRUE(vh.ok()) << vh.status().ToString();
    EXPECT_EQ(ve->permanently_violated, step == 4) << "step " << step;
    EXPECT_EQ(vl->permanently_violated, ve->permanently_violated) << "step " << step;
    EXPECT_EQ(vh->permanently_violated, ve->permanently_violated) << "step " << step;
    EXPECT_EQ(vh->potentially_satisfied, ve->potentially_satisfied) << "step " << step;
  }
}

TEST_F(MonitorTest, ParallelVerdictsMatchSequentialBitForBit) {
  // Progression is pure and the factory canonicalizes by content fingerprint,
  // so running residual classes on a pool must leave every verdict field —
  // including residual size and class counts — identical to sequential runs.
  CheckOptions par;
  par.threads = 4;
  for (fotl::Formula phi : {submit_once_, fifo_}) {
    for (MonitorMode mode :
         {MonitorMode::kEager, MonitorMode::kEagerHistoryLess}) {
      for (int seed = 0; seed < 6; ++seed) {
        std::mt19937 rng(7000 + seed);
        auto seq = *Monitor::Create(fac_, phi, {}, {}, mode);
        auto parallel = *Monitor::Create(fac_, phi, {}, par, mode);
        for (int step = 0; step < 7; ++step) {
          std::vector<Value> subs, fills, unsubs;
          if (rng() % 2) subs.push_back(1 + rng() % 4);
          if (rng() % 2) fills.push_back(1 + rng() % 4);
          if (rng() % 3 == 0) unsubs.push_back(1 + rng() % 4);
          Transaction txn = Txn(subs, fills, unsubs);
          auto vs = seq->ApplyTransaction(txn);
          auto vp = parallel->ApplyTransaction(txn);
          ASSERT_TRUE(vs.ok()) << vs.status().ToString();
          ASSERT_TRUE(vp.ok()) << vp.status().ToString();
          EXPECT_EQ(vp->potentially_satisfied, vs->potentially_satisfied)
              << "seed " << seed << " step " << step;
          EXPECT_EQ(vp->permanently_violated, vs->permanently_violated);
          EXPECT_EQ(vp->residual_size, vs->residual_size)
              << "seed " << seed << " step " << step;
          EXPECT_EQ(vp->num_instances, vs->num_instances);
          EXPECT_EQ(vp->num_residual_classes, vs->num_residual_classes);
        }
      }
    }
  }
}

TEST_F(MonitorTest, VerdictCacheAccumulatesHitsOnSteadyStates) {
  // A steady stream keeps producing residual conjunctions the monitor has
  // already decided; the shared verdict cache must start hitting. Pinned to
  // the progression backend: the automaton backend memoizes transitions, so
  // steady states never reach CheckSat (and thus the verdict cache) at all.
  CheckOptions options;
  options.backend = MonitorBackend::kProgression;
  auto m = *Monitor::Create(fac_, submit_once_, {}, options);
  MonitorVerdict last;
  for (int step = 0; step < 6; ++step) {
    auto v = m->ApplyTransaction(Txn({}, {1}));  // Fill(1) every state
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_TRUE(v->potentially_satisfied);
    last = *v;
  }
  EXPECT_GT(last.verdict_cache_stats.hits + last.verdict_cache_stats.misses, 0u);
  EXPECT_GT(last.verdict_cache_stats.hits, 0u);
}

TEST_F(MonitorTest, AutomatonBackendMemoizesSteadyStates) {
  // Same steady stream on the automaton backend: after the first occurrence
  // of a (residual, letter) pair, updates are pure transition-memo hits and
  // the tableau never runs again — live_queries stays at the number of
  // distinct residuals reached. Pinned to the joint residual-graph path: the
  // default cohort lockstep path counts table-cell reads instead of joint
  // steps (covered by the cohort-specific tests below).
  CheckOptions options;
  options.cohort_stepping = false;
  auto m = *Monitor::Create(fac_, submit_once_, {}, options);
  MonitorVerdict last;
  for (int step = 0; step < 6; ++step) {
    auto v = m->ApplyTransaction(Txn({}, {1}));  // Fill(1) every state
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_TRUE(v->potentially_satisfied);
    EXPECT_EQ(v->backend, MonitorBackend::kAutomaton);
    last = *v;
  }
  EXPECT_EQ(last.automaton_stats.steps, 6u);
  EXPECT_GT(last.automaton_stats.memo_hits, 0u);
  // Steady loop: the residual graph stabilizes after at most two states, so
  // at least the last four updates were memo hits with zero tableau work.
  EXPECT_GE(last.automaton_stats.memo_hits, 4u);
  EXPECT_EQ(last.automaton_stats.live_queries, last.automaton_stats.num_states);
  EXPECT_EQ(last.tableau_stats.num_expansions, 0u);  // final update: pure lookup
}

TEST_F(MonitorTest, TableauStatsPerUpdateAndCumulative) {
  // CheckSat counters reset per call, so verdict.tableau_stats covers only
  // the latest update; cumulative_tableau_stats must be the running sum of
  // the per-update stats, and must freeze (not reset) once the monitor dies.
  // Joint path only: cohort liveness is precompiled per state (lazy safety
  // expansion), so the cohort path never reaches the monitor's CheckSat.
  CheckOptions options;
  options.cohort_stepping = false;
  auto m = *Monitor::Create(fac_, submit_once_, {}, options);
  ptl::TableauStats sum;
  for (int step = 0; step < 4; ++step) {
    auto v = m->ApplyTransaction(Txn({}, {1}));  // Fill(1), never violating
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    sum += v->tableau_stats;
    EXPECT_EQ(v->cumulative_tableau_stats.num_states, sum.num_states);
    EXPECT_EQ(v->cumulative_tableau_stats.num_edges, sum.num_edges);
    EXPECT_EQ(v->cumulative_tableau_stats.num_expansions, sum.num_expansions);
    EXPECT_EQ(v->cumulative_tableau_stats.cache_hits, sum.cache_hits);
    EXPECT_EQ(v->cumulative_tableau_stats.cache_misses, sum.cache_misses);
  }
  EXPECT_GT(sum.num_expansions, 0u);
  ASSERT_GE(sum.num_expansions, m->last_verdict().tableau_stats.num_expansions);

  // Kill the monitor: resubmission of 1 after an unsubmit.
  ASSERT_TRUE(m->ApplyTransaction(Txn({1}, {})).ok());
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {}, {1})).ok());
  auto dead = m->ApplyTransaction(Txn({1}, {}));
  ASSERT_TRUE(dead.ok());
  ASSERT_TRUE(dead->permanently_violated);
  size_t total = dead->cumulative_tableau_stats.num_expansions;
  EXPECT_GT(total, sum.num_expansions);
  // Dead path: no check runs, per-update stats are zero, totals are kept.
  auto after = m->ApplyTransaction(Txn({}, {2}));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tableau_stats.num_expansions, 0u);
  EXPECT_EQ(after->cumulative_tableau_stats.num_expansions, total);
}

TEST_F(MonitorTest, HistoryLessEarliestDetectionPreserved) {
  // Same earliest-time semantics as kEager on the contradictory-obligation
  // constraint from the integration tests.
  auto phi = *fotl::Parse(fac_.get(),
                          "forall x . G (Sub(x) -> (X Fill(x)) & (X !Fill(x)))");
  auto m = *Monitor::Create(fac_, phi, {}, {}, MonitorMode::kEagerHistoryLess);
  auto v = m->ApplyTransaction(Txn({1}, {}));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->potentially_satisfied);  // earliest possible detection
}

}  // namespace
}  // namespace checker
}  // namespace tic
