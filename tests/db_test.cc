// Tests for the temporal-database substrate: vocabularies, relations, states,
// histories, updates, relevant sets, ultimately periodic databases.

#include <gtest/gtest.h>

#include "db/history.h"
#include "db/relation.h"
#include "db/state.h"
#include "db/update.h"
#include "db/vocabulary.h"

namespace tic {
namespace {

TEST(VocabularyTest, RegisterAndLookup) {
  Vocabulary v;
  auto p = v.AddPredicate("Sub", 1);
  ASSERT_TRUE(p.ok());
  auto r = v.AddPredicate("R", 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(v.num_predicates(), 2u);
  EXPECT_EQ(*v.FindPredicate("Sub"), *p);
  EXPECT_TRUE(v.FindPredicate("Nope").status().IsNotFound());
  EXPECT_EQ(v.predicate(*r).arity, 3u);
  EXPECT_EQ(v.MaxArity(), 3u);
}

TEST(VocabularyTest, RejectsDuplicatesAndArityZero) {
  Vocabulary v;
  ASSERT_TRUE(v.AddPredicate("p", 1).ok());
  EXPECT_TRUE(v.AddPredicate("p", 2).status().IsAlreadyExists());
  EXPECT_TRUE(v.AddPredicate("zero", 0).status().IsInvalidArgument());
}

TEST(VocabularyTest, Constants) {
  Vocabulary v;
  auto c = v.AddConstant("alice");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(v.AddConstant("alice").status().IsAlreadyExists());
  EXPECT_EQ(v.constant_name(*c), "alice");
  EXPECT_EQ(*v.FindConstant("alice"), *c);
}

TEST(VocabularyTest, Builtins) {
  Vocabulary v;
  auto leq = v.AddBuiltin("leq", Builtin::kLessEq);
  ASSERT_TRUE(leq.ok());
  EXPECT_EQ(v.predicate(*leq).arity, 2u);
  auto zero = v.AddBuiltin("Zero", Builtin::kZero);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(v.predicate(*zero).arity, 1u);
  EXPECT_TRUE(v.HasBuiltins());
  // Builtins do not count toward the data max arity.
  ASSERT_TRUE(v.AddPredicate("p", 1).ok());
  EXPECT_EQ(v.MaxArity(), 1u);
  EXPECT_TRUE(v.AddBuiltin("bad", Builtin::kNone).status().IsInvalidArgument());
}

TEST(RelationTest, InsertEraseContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}).ok());
  EXPECT_TRUE(r.Insert({1, 2}).ok());  // idempotent
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
  EXPECT_TRUE(r.Erase({1, 2}).ok());
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({1}).IsInvalidArgument());
  EXPECT_TRUE(r.Erase({1}).IsInvalidArgument());
}

TEST(RelationTest, CollectElements) {
  Relation r(2);
  ASSERT_TRUE(r.Insert({1, 5}).ok());
  ASSERT_TRUE(r.Insert({5, 9}).ok());
  std::unordered_set<Value> out;
  r.CollectElements(&out);
  EXPECT_EQ(out, (std::unordered_set<Value>{1, 5, 9}));
}

class StateTest : public ::testing::Test {
 protected:
  StateTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 1);
    leq_ = *v->AddBuiltin("leq", Builtin::kLessEq);
    vocab_ = v;
  }
  VocabularyPtr vocab_;
  PredicateId p_, leq_;
};

TEST_F(StateTest, InsertAndHolds) {
  DatabaseState s(vocab_);
  EXPECT_TRUE(s.Insert(p_, {4}).ok());
  EXPECT_TRUE(s.Holds(p_, {4}));
  EXPECT_FALSE(s.Holds(p_, {5}));
  EXPECT_EQ(s.TotalTuples(), 1u);
}

TEST_F(StateTest, BuiltinRelationsAreImmutable) {
  DatabaseState s(vocab_);
  EXPECT_TRUE(s.Insert(leq_, {1, 2}).IsInvalidArgument());
}

TEST_F(StateTest, EqualityAndActiveDomain) {
  DatabaseState a(vocab_), b(vocab_);
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(a.Insert(p_, {3}).ok());
  EXPECT_FALSE(a == b);
  std::unordered_set<Value> dom;
  a.CollectActiveDomain(&dom);
  EXPECT_EQ(dom, (std::unordered_set<Value>{3}));
}

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 2);
    c_ = *v->AddConstant("c");
    vocab_ = v;
  }
  VocabularyPtr vocab_;
  PredicateId p_;
  ConstantId c_;
};

TEST_F(HistoryTest, ConstantInterpretationRequired) {
  EXPECT_TRUE(History::Create(vocab_, {}).status().IsInvalidArgument());
  auto h = History::Create(vocab_, {42});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->ConstantValue(c_), 42);
}

TEST_F(HistoryTest, AppendAndRelevantSet) {
  History h = *History::Create(vocab_, {42});
  DatabaseState* s0 = h.AppendEmptyState();
  ASSERT_TRUE(s0->Insert(p_, {1, 7}).ok());
  DatabaseState* s1 = *h.AppendCopyOfLast();
  ASSERT_TRUE(s1->Insert(p_, {7, 9}).ok());
  EXPECT_EQ(h.length(), 2u);
  EXPECT_TRUE(h.state(1).Holds(p_, {1, 7}));  // copied forward
  EXPECT_FALSE(h.state(0).Holds(p_, {7, 9}));
  // Relevant set: constants + all elements in all states, sorted.
  EXPECT_EQ(h.RelevantSet(), (std::vector<Value>{1, 7, 9, 42}));
}

TEST_F(HistoryTest, AppendCopyNeedsState) {
  History h = *History::Create(vocab_, {0});
  EXPECT_TRUE(h.AppendCopyOfLast().status().IsOutOfRange());
}

TEST_F(HistoryTest, ApplyTransaction) {
  History h = *History::Create(vocab_, {0});
  Transaction t1{UpdateOp::Insert(p_, {1, 2}), UpdateOp::Insert(p_, {3, 4})};
  ASSERT_TRUE(ApplyTransaction(&h, t1).ok());
  EXPECT_EQ(h.length(), 1u);
  EXPECT_TRUE(h.state(0).Holds(p_, {1, 2}));
  Transaction t2{UpdateOp::Delete(p_, {1, 2})};
  ASSERT_TRUE(ApplyTransaction(&h, t2).ok());
  EXPECT_EQ(h.length(), 2u);
  EXPECT_FALSE(h.state(1).Holds(p_, {1, 2}));
  EXPECT_TRUE(h.state(1).Holds(p_, {3, 4}));
  EXPECT_TRUE(h.state(0).Holds(p_, {1, 2}));  // past states immutable
}

TEST_F(HistoryTest, UltimatelyPeriodicDbIndexing) {
  DatabaseState a(vocab_), b(vocab_), c(vocab_);
  ASSERT_TRUE(a.Insert(p_, {1, 1}).ok());
  ASSERT_TRUE(b.Insert(p_, {2, 2}).ok());
  ASSERT_TRUE(c.Insert(p_, {3, 3}).ok());
  UltimatelyPeriodicDb db(vocab_, {0}, {a}, {b, c});
  EXPECT_TRUE(db.StateAt(0).Holds(p_, {1, 1}));
  EXPECT_TRUE(db.StateAt(1).Holds(p_, {2, 2}));
  EXPECT_TRUE(db.StateAt(2).Holds(p_, {3, 3}));
  EXPECT_TRUE(db.StateAt(3).Holds(p_, {2, 2}));  // loops
  EXPECT_TRUE(db.StateAt(102).Holds(p_, {3, 3}));
  EXPECT_EQ(db.RelevantSet(), (std::vector<Value>{0, 1, 2, 3}));
  auto prefix = db.TakePrefix(2);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->length(), 2u);
  EXPECT_TRUE(prefix->state(1).Holds(p_, {2, 2}));
}

}  // namespace
}  // namespace tic
