// Differential fuzz suite for the cohort lockstep path: on randomly
// generated safety sentences and random update streams, the SoA cohort
// stepper (dense state x letter-class table, word-parallel gather, offline
// Hopcroft-style minimization) must produce exactly the same per-update
// verdicts as the joint residual-graph path it bypasses and as the literal
// progression baseline. The shared oracle (testing/oracles.h) runs every
// case through four configurations — progression reference, automaton with
// cohorts off, cohorts on with minimization forced every update, cohorts on
// with minimization disabled — and fails on any sat/violated divergence.
//
// Three families:
//   A. Random safe sentences (1 and 2 variables) over churn streams with a
//      fresh element arriving mid-stream: 2-variable cases ground to
//      letter-SHARING instance sets, so the union-find places them on the
//      joint path and the oracle checks the placement split itself; the
//      fresh element exercises incremental cohort growth and, on merges,
//      the demotion + rebuild path.
//   B. Wide single-variable cohorts over a 6-element universe: every
//      grounded instance is letter-disjoint, so the whole population steps
//      through one cohort's gather loop with slots in genuinely distinct
//      states.
//   C. Deep matrices (depth up to 5) on short streams: larger automata, so
//      forced per-update minimization actually collapses states instead of
//      running on trivial two-state machines.
//
// Failure messages carry the full reproducer; re-run one case with
// TIC_REPLAY_SEED=<c>.

#include <gtest/gtest.h>

#include <string>

#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"

namespace tic {
namespace checker {
namespace {

namespace tt = tic::testing;

void ExpectCohortConfigsAgree(const tt::FotlCase& kase,
                              const std::string& label) {
  auto r = tt::CohortConfigsAgree(kase);
  ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString()
                      << "\nreproducer:\n" << tt::SerializeCase(kase);
  ASSERT_TRUE(r->pass) << label << ": " << r->detail;
}

TEST(CohortDiffTest, RandomSafeSentencesAgreeAcrossConfigs) {
  // Family A: 700 random safe sentences with the default generator knobs
  // (the same distribution the backend diff suite runs). The 2-variable
  // draws produce instances sharing ground atoms, which must land on the
  // joint path; the 1-variable draws cohort.
  constexpr int kCases = 700;
  auto replay = tt::ReplaySeedFromEnv();
  for (int c = 0; c < kCases; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    tt::Entropy ent(0xb5297a4du + static_cast<uint32_t>(c));
    tt::FotlCase kase = tt::GenerateSafetyCase(&ent);
    ExpectCohortConfigsAgree(kase, "caseA#" + std::to_string(c) +
                                       " (re-run with TIC_REPLAY_SEED=" +
                                       std::to_string(c) + ")");
  }
}

TEST(CohortDiffTest, WideSingleVariableCohortsAgree) {
  // Family B: single-variable sentences over universe {1..6} with element 7
  // arriving in the back half — seven letter-disjoint instances per case,
  // all stepping through one cohort, with one incremental mid-stream append.
  constexpr int kCases = 200;
  auto replay = tt::ReplaySeedFromEnv();
  for (int c = 0; c < kCases; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    tt::Entropy ent(0x68e31da4u + static_cast<uint32_t>(c));
    tt::SafetyCaseOptions opts;
    opts.min_vars = 1;
    opts.max_vars = 1;
    opts.universe = {1, 2, 3, 4, 5, 6};
    opts.fresh_element = 7;
    tt::FotlCase kase = tt::GenerateSafetyCase(&ent, opts);
    ExpectCohortConfigsAgree(kase, "caseB#" + std::to_string(c));
  }
}

TEST(CohortDiffTest, DeepMatricesAgreeUnderForcedMinimization) {
  // Family C: matrix depth 4-5 on short streams. The point is automaton
  // size: the interval-1 configuration inside the oracle re-minimizes after
  // every update, so these cases check remapped state ids mid-stream on
  // machines where the quotient is non-trivial.
  constexpr int kCases = 150;
  auto replay = tt::ReplaySeedFromEnv();
  for (int c = 0; c < kCases; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    tt::Entropy ent(0x1b56c4e9u + static_cast<uint32_t>(c));
    tt::SafetyCaseOptions opts;
    opts.min_depth = 4;
    opts.max_depth = 5;
    opts.min_stream = 3;
    opts.max_stream = 5;
    tt::FotlCase kase = tt::GenerateSafetyCase(&ent, opts);
    ExpectCohortConfigsAgree(kase, "caseC#" + std::to_string(c));
  }
}

}  // namespace
}  // namespace checker
}  // namespace tic
