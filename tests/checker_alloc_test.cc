// Zero-allocation gate for the steady-state monitoring hot path.
//
// The flat-container layer (src/common/flat/) exists so that a warmed-up
// Monitor::ApplyTransaction on the automaton backend's memo-hit path touches
// the heap exactly zero times: history append aliases the previous state,
// the propositional state stays inline in PropState's small-vector, letter
// lookup probes a warm flat map, and the (state, signature) transition is a
// flat-map hit. This suite interposes the global operator new/delete family
// (src/testing/alloc_count.cc, compiled into this target with
// TIC_COUNT_ALLOCS) and asserts that bound — a regression here means some
// hot-path structure started allocating again.

#include <gtest/gtest.h>

#include "checker/monitor.h"
#include "common/flat/flat_map.h"
#include "common/flat/flat_set.h"
#include "common/telemetry/recorder.h"
#include "fotl/parser.h"
#include "ptl/word.h"
#include "testing/alloc_count.h"

namespace tic {
namespace checker {
namespace {

class AllocCountTest : public ::testing::Test {
 protected:
  AllocCountTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    submit_once_ =
        *fotl::Parse(fac_.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
  }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    return t;
  }

  VocabularyPtr vocab_;
  PredicateId sub_ = 0, fill_ = 0;
  std::shared_ptr<fotl::FormulaFactory> fac_;
  fotl::Formula submit_once_ = nullptr;
};

TEST_F(AllocCountTest, HarnessIsCompiledIn) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  testing::ResetAllocCounts();
  testing::AllocWindow w;
  // Direct allocator-function calls: a `delete new int` expression may be
  // elided entirely by the optimizer, but these cannot.
  void* p = ::operator new(16);
  ::operator delete(p);
  EXPECT_EQ(w.allocations(), 1u);
  EXPECT_EQ(w.deallocations(), 1u);
}

// The headline guarantee: after warm-up, an empty-transaction update on the
// automaton backend — history alias append, letter probes, signature hit,
// transition-memo hit, cached liveness — performs ZERO heap allocations.
TEST_F(AllocCountTest, SteadyStateMonitorStepAllocatesNothing) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_EQ(m->options().backend, MonitorBackend::kAutomaton);

  // Populate: one element becomes relevant, then the database stays put.
  // Sub(7) must be retracted before the steady phase: Sub persisting across
  // states violates "Sub(x) -> X G !Sub(x)", and a dead monitor would skip
  // the very hot path this test is about.
  ASSERT_TRUE(m->ApplyTransaction(Txn({7}, {11})).ok());
  Transaction retract;
  retract.push_back(UpdateOp::Delete(sub_, {7}));
  ASSERT_TRUE(m->ApplyTransaction(retract).ok());
  // Warm-up: amortized growth (history/word vectors double past the measure
  // window), memo and signature tables fill, letter probe capacity settles.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
  }

  testing::ResetAllocCounts();
  testing::AllocWindow window;
  for (int i = 0; i < 20; ++i) {
    auto v = m->ApplyTransaction(Transaction{});
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->potentially_satisfied);
    ASSERT_EQ(v->backend, MonitorBackend::kAutomaton);
  }
  EXPECT_EQ(window.allocations(), 0u)
      << "steady-state memo-hit updates must not touch the heap";
  EXPECT_EQ(window.deallocations(), 0u);
}

// The same zero-allocation bound for a WIDE warmed cohort: 32 letter-disjoint
// instances stepping through one cohort's SoA gather loop, with slots parked
// in genuinely different automaton states (element 7 saw Sub, the rest did
// not), so the measured updates run the dense-table gather — not the
// single-cell uniform shortcut — and must still never touch the heap: touch
// marking probes a warm flat map, states[] and the gather scratch are
// pre-sized, the minimize trigger reads a counter without taking the
// TransitionSystem lock.
TEST_F(AllocCountTest, SteadyStateCohortGatherAllocatesNothing) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_EQ(m->options().backend, MonitorBackend::kAutomaton);
  ASSERT_TRUE(m->options().cohort_stepping);

  std::vector<Value> universe;
  for (Value v = 1; v <= 32; ++v) universe.push_back(v);
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, universe)).ok());  // 32 instances
  ASSERT_TRUE(m->ApplyTransaction(Txn({7})).ok());
  Transaction retract;
  retract.push_back(UpdateOp::Delete(sub_, {7}));
  ASSERT_TRUE(m->ApplyTransaction(retract).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
  }
  ASSERT_EQ(m->last_verdict().num_cohort_instances, 32u);
  ASSERT_EQ(m->last_verdict().num_cohorts, 1u);

  testing::ResetAllocCounts();
  testing::AllocWindow window;
  for (int i = 0; i < 20; ++i) {
    auto v = m->ApplyTransaction(Transaction{});
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->potentially_satisfied);
  }
  EXPECT_EQ(window.allocations(), 0u)
      << "warmed cohort gather updates must not touch the heap";
  EXPECT_EQ(window.deallocations(), 0u);
}

// The flight recorder rides the hot path (TIC_RECORD in ApplyTransaction and
// the letter-flip loop), so the zero-allocation bound must hold WITH the
// recorder demonstrably recording: rings are pre-created by Monitor::Create
// (telemetry::EnsureThreadRing) and a slot write is seven atomic stores into
// a fixed ring — no heap. A recurring non-empty delta keeps events flowing
// through the measured window.
TEST_F(AllocCountTest, SteadyStateStepWithRecorderEnabledAllocatesNothing) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
#ifdef TIC_TELEMETRY_ENABLED
  telemetry::SetRecorderEnabled(true);
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_EQ(m->options().backend, MonitorBackend::kAutomaton);

  Transaction fill = Txn({}, {11});
  Transaction unfill;
  unfill.push_back(UpdateOp::Delete(fill_, {11}));
  ASSERT_TRUE(m->ApplyTransaction(Txn({7}, {})).ok());
  Transaction retract;
  retract.push_back(UpdateOp::Delete(sub_, {7}));
  ASSERT_TRUE(m->ApplyTransaction(retract).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(fill).ok());
    ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
  }

  const uint64_t events_before = telemetry::SnapshotRecorder().size() +
                                 telemetry::RecorderDropped();
  testing::ResetAllocCounts();
  {
    testing::AllocWindow window;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
    }
    // The memo-hit empty update records kTxnApplied and stays heap-free.
    EXPECT_EQ(window.allocations(), 0u)
        << "recorder-on steady-state updates must not touch the heap";
    EXPECT_EQ(window.deallocations(), 0u);
  }
  {
    // Warmed recurring delta WITH letter flips: the db-side state copy
    // allocates (as RecurringDeltaStaysFlat documents), but turning the
    // recorder off must not change the monitor-side count — i.e. recording
    // the kLetterFlip events is itself allocation-free.
    testing::AllocWindow with_recorder;
    ASSERT_TRUE(m->ApplyTransaction(fill).ok());
    ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
    uint64_t on_cost = with_recorder.allocations();
    telemetry::SetRecorderEnabled(false);
    testing::AllocWindow without_recorder;
    ASSERT_TRUE(m->ApplyTransaction(fill).ok());
    ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
    telemetry::SetRecorderEnabled(true);
    EXPECT_EQ(on_cost, without_recorder.allocations())
        << "recording letter flips must cost zero allocations";
  }
  const uint64_t events_after = telemetry::SnapshotRecorder().size() +
                                telemetry::RecorderDropped();
  EXPECT_GT(events_after, events_before)
      << "the gate is vacuous unless events were actually recorded";
  ASSERT_TRUE(m->last_verdict().potentially_satisfied);
#else
  GTEST_SKIP() << "recorder compiled out (TIC_TELEMETRY=OFF)";
#endif
}

// Cohort growth is O(delta), not O(population): appending one fresh element
// to a warmed 32-instance cohort late in the run must cost no more
// allocations than the same append early — no table rebuilds, no placement
// recomputation over existing instances, no states[] reshuffle beyond the
// one appended slot.
TEST_F(AllocCountTest, CohortGrowthIsDeltaBounded) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  auto m = *Monitor::Create(fac_, submit_once_);
  std::vector<Value> universe;
  for (Value v = 1; v <= 32; ++v) universe.push_back(v);
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, universe)).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
  }

  testing::ResetAllocCounts();
  testing::AllocWindow early;
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {100})).ok());
  uint64_t early_cost = early.allocations();
  // More steady updates, then a second single-element append much later.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(Transaction{}).ok());
  }
  testing::AllocWindow late;
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {101})).ok());
  ASSERT_TRUE(m->last_verdict().potentially_satisfied);
  ASSERT_EQ(m->last_verdict().num_cohort_instances, 34u);
  // Same delta, longer history and bigger population: must not cost more.
  EXPECT_LE(late.allocations(), early_cost);
}

// Same bound for a *recurring delta* (insert+delete cycle the memo has seen
// before): the transaction copies the state, so the db layer allocates, but
// the monitor side — signature, transition, verdict — must still hit warm
// structures; assert the per-update allocation count stays flat and small
// instead of growing with history length.
TEST_F(AllocCountTest, RecurringDeltaStaysFlat) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_TRUE(m->ApplyTransaction(Txn({7})).ok());
  Transaction retract;
  retract.push_back(UpdateOp::Delete(sub_, {7}));
  ASSERT_TRUE(m->ApplyTransaction(retract).ok());
  Transaction fill = Txn({}, {11});
  Transaction unfill;
  unfill.push_back(UpdateOp::Delete(fill_, {11}));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(fill).ok());
    ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
  }
  testing::ResetAllocCounts();
  testing::AllocWindow early;
  ASSERT_TRUE(m->ApplyTransaction(fill).ok());
  ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
  uint64_t per_cycle = early.allocations();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(m->ApplyTransaction(fill).ok());
    ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
  }
  testing::AllocWindow late;
  ASSERT_TRUE(m->ApplyTransaction(fill).ok());
  ASSERT_TRUE(m->ApplyTransaction(unfill).ok());
  ASSERT_TRUE(m->last_verdict().potentially_satisfied);  // not a dead monitor
  // The same delta later in the history must not cost more: no O(t) copies,
  // no cache rebuilds.
  EXPECT_LE(late.allocations(), per_cycle);
}

// PropState regression (the unordered_set -> sorted inline small-vector
// bugfix): up to kInlineTrues distinct true letters live entirely inline.
TEST_F(AllocCountTest, PropStateInlineOperationsAllocateNothing) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  testing::ResetAllocCounts();
  testing::AllocWindow window;
  ptl::PropState st;
  for (ptl::PropId p = 0; p < ptl::PropState::kInlineTrues; ++p) {
    st.Set(p * 3, true);
  }
  for (ptl::PropId p = 0; p < ptl::PropState::kInlineTrues; ++p) {
    EXPECT_TRUE(st.Get(p * 3));
    EXPECT_FALSE(st.Get(p * 3 + 1));
  }
  ptl::PropState copy = st;       // inline copy
  copy.Set(0, false);             // inline erase
  EXPECT_FALSE(copy.Get(0));
  EXPECT_TRUE(st.Get(0));
  EXPECT_EQ(window.allocations(), 0u);
}

// Flat-table hit paths allocate nothing once warm: map hits, set re-inserts,
// and Clear() keeps bucket storage.
TEST_F(AllocCountTest, FlatContainerHitPathsAllocateNothing) {
  ASSERT_TRUE(testing::AllocCountingAvailable());
  flat::FlatMap<uint64_t, uint64_t> map;
  flat::FlatSet<uint32_t> set;
  for (uint64_t i = 0; i < 100; ++i) {
    map.Emplace(i, i * i);
    set.Insert(static_cast<uint32_t>(i));
  }
  testing::ResetAllocCounts();
  testing::AllocWindow window;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_NE(map.Get(i), nullptr);
    ASSERT_FALSE(set.Insert(static_cast<uint32_t>(i)));
  }
  set.Clear();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(set.Insert(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(window.allocations(), 0u);
}

}  // namespace
}  // namespace checker
}  // namespace tic
