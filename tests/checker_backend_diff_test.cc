// Differential fuzz suite for the monitor backends: on randomly generated
// safety sentences and random update streams, the automaton backend
// (memoized residual-graph transitions, liveness decided once per state) must
// produce exactly the same per-update verdicts as the literal progression +
// CheckSat procedure it replaces. Three families:
//   A. Random safe matrices (1 and 2 variables) over random streams with
//      fresh elements arriving mid-stream (epoch recompiles + word replay).
//   B. Spill-sized closures: deep Next-chains whose grounded joint closure
//      exceeds the FlatBits inline width (256 bits), exercising the heap
//      bitset path on both backends.
//   C. Batch checks with require_safety=false on non-safe formulas: the
//      closure-bitset TransitionSystem's eager (SCC) liveness mode against
//      progression + tableau, including the clamped-budget fallback.
//
// Case generation and the backend-equality oracle live in src/testing/
// (shared with checker_property_test and fuzz_monitor_diff); seed mode there
// reproduces the historical per-seed cases bit for bit, so the seed bases and
// family sizes below cover exactly what they always covered. Failure messages
// carry the full reproducer text; re-run one case with TIC_REPLAY_SEED=<c>,
// or save the reproducer to a file and set TIC_REPLAY_FILE to replay it
// through the ReplayFromFile test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/extension.h"
#include "fotl/factory.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"

namespace tic {
namespace checker {
namespace {

namespace tt = tic::testing;

// Runs the shared backend-equality oracle; on violation the detail already
// ends in the serialized reproducer.
void ExpectBackendsAgree(const tt::FotlCase& kase, const std::string& label) {
  auto r = tt::BackendVerdictsAgree(kase);
  ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString()
                      << "\nreproducer:\n" << tt::SerializeCase(kase);
  ASSERT_TRUE(r->pass) << label << ": " << r->detail;
}

TEST(BackendDiffTest, RandomSafeSentencesAgreePerUpdate) {
  // Family A: 800 random safe sentences. Streams run over values {1,2,3}
  // with value 4 arriving in the back half — every case with a late fresh
  // element exercises the epoch recompile + word replay path.
  constexpr int kCases = 800;
  auto replay = tt::ReplaySeedFromEnv();
  for (int c = 0; c < kCases; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    tt::Entropy ent(0x9e3779b9u + static_cast<uint32_t>(c));
    tt::FotlCase kase = tt::GenerateSafetyCase(&ent);
    ExpectBackendsAgree(kase, "caseA#" + std::to_string(c) +
                                  " (re-run with TIC_REPLAY_SEED=" +
                                  std::to_string(c) + ")");
  }
}

TEST(BackendDiffTest, SpillSizedClosuresAgreePerUpdate) {
  // Family B: the grounded joint formula carries a deep Next-chain per
  // instance, pushing the closure past FlatBits's 256 inline bits, so both
  // backends run the heap-spill bitset path.
  constexpr int kCases = 100;
  for (int c = 0; c < kCases; ++c) {
    tt::Entropy ent(0x85ebca6bu + static_cast<uint32_t>(c));
    tt::CaseBuilder builder(2);
    // G (P0(x) -> X^k P1(x)), k in [60, 120): closure size scales with k and
    // with the number of instances.
    size_t k = 60 + ent.Below(60);
    auto& fac = *builder.factory();
    fotl::Formula head = *fac.Atom(builder.preds()[1], {builder.Var(0)});
    for (size_t i = 0; i < k; ++i) head = fac.Next(head);
    fotl::Formula matrix =
        fac.Implies(*fac.Atom(builder.preds()[0], {builder.Var(0)}), head);
    fotl::Formula phi = builder.Quantify(fac.Always(matrix), 1);
    size_t len = 4 + ent.Below(3);
    std::vector<Transaction> stream;
    for (size_t t = 0; t < len; ++t) {
      stream.push_back(tt::ChurnTxn(&ent, builder.preds(), {1, 2}));
    }
    ExpectBackendsAgree(builder.Finish(phi, 1, std::move(stream)),
                        "caseB#" + std::to_string(c));
  }
}

TEST(BackendDiffTest, BatchNonSafeChecksAgree) {
  // Family C: the batch checker with require_safety=false on formulas with
  // positive Until/Eventually — the TransitionSystem's eager SCC-liveness
  // mode (and, where compilation exceeds the clamped budget, its fallback to
  // progression) against the reference two-phase procedure.
  constexpr int kCases = 200;
  int automaton_ran = 0;
  for (int c = 0; c < kCases; ++c) {
    tt::Entropy ent(0xc2b2ae35u + static_cast<uint32_t>(c));
    tt::CaseBuilder builder(2 + ent.Below(2));
    size_t num_vars = 1;
    int depth = 2 + static_cast<int>(ent.Below(2));
    fotl::Formula matrix = builder.GenCosafe(&ent, num_vars, depth);
    if (ent.Below(2) == 0) {
      matrix = builder.factory()->And(matrix,
                                      builder.GenSafe(&ent, num_vars, 2));
    }
    fotl::Formula phi = builder.Quantify(matrix, num_vars);

    History h = *History::Create(builder.vocab(), {});
    size_t len = 2 + ent.Below(3);
    std::vector<Transaction> stream;
    for (size_t t = 0; t < len; ++t) {
      stream.push_back(tt::ChurnTxn(&ent, builder.preds(), {1, 2}));
      ASSERT_TRUE(ApplyTransaction(&h, stream.back()).ok());
    }
    tt::FotlCase kase = builder.Finish(phi, num_vars, std::move(stream));

    CheckOptions prog_opts;
    prog_opts.backend = MonitorBackend::kProgression;
    prog_opts.require_safety = false;
    prog_opts.want_witness = false;
    CheckOptions auto_opts = prog_opts;
    auto_opts.backend = MonitorBackend::kAutomaton;

    auto rp = CheckPotentialSatisfaction(*builder.factory(), phi, h, {},
                                         prog_opts);
    auto ra = CheckPotentialSatisfaction(*builder.factory(), phi, h, {},
                                         auto_opts);
    ASSERT_TRUE(rp.ok()) << "caseC#" << c << ": " << rp.status().ToString()
                         << "\nreproducer:\n" << tt::SerializeCase(kase);
    ASSERT_TRUE(ra.ok()) << "caseC#" << c << ": " << ra.status().ToString()
                         << "\nreproducer:\n" << tt::SerializeCase(kase);
    EXPECT_EQ(rp->potentially_satisfied, ra->potentially_satisfied)
        << "caseC#" << c << "\nreproducer:\n" << tt::SerializeCase(kase);
    if (ra->tableau_stats.num_expansions == 0) ++automaton_ran;
  }
  // The clamped-budget fallback must not have swallowed the whole family:
  // most single-variable groundings compile fine.
  EXPECT_GT(automaton_ran, kCases / 2);
}

// TIC_REPLAY_FILE=<path>: load a reproducer written from a failure message
// (or by the shrinker) and re-run the full oracle kit on it. Skipped when the
// variable is unset, so the test is inert in normal CI runs.
TEST(BackendDiffReplayTest, ReplayFromFile) {
  auto file = tt::ReplayFileFromEnv();
  if (!file) GTEST_SKIP() << "TIC_REPLAY_FILE not set";
  auto kase = tt::LoadCaseFile(*file);
  ASSERT_TRUE(kase.ok()) << kase.status().ToString();
  auto r = tt::BackendVerdictsAgree(*kase);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->pass) << r->detail;
  auto b = tt::MonitorMatchesBatch(*kase);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->pass) << b->detail;
  auto p = tt::PrefixClosureHolds(*kase);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->pass) << p->detail;
}

}  // namespace
}  // namespace checker
}  // namespace tic
