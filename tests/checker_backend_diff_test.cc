// Differential fuzz suite for the monitor backends: on randomly generated
// safety sentences and random update streams, the automaton backend
// (memoized residual-graph transitions, liveness decided once per state) must
// produce exactly the same per-update verdicts as the literal progression +
// CheckSat procedure it replaces. Three families:
//   A. Random safe matrices (1 and 2 variables) over random streams with
//      fresh elements arriving mid-stream (epoch recompiles + word replay).
//   B. Spill-sized closures: deep Next-chains whose grounded joint closure
//      exceeds the FlatBits inline width (256 bits), exercising the heap
//      bitset path on both backends.
//   C. Batch checks with require_safety=false on non-safe formulas: the
//      closure-bitset TransitionSystem's eager (SCC) liveness mode against
//      progression + tableau, including the clamped-budget fallback.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "fotl/factory.h"

namespace tic {
namespace checker {
namespace {

class BackendDiffTest : public ::testing::Test {
 protected:
  void Reset(size_t num_preds) {
    auto v = std::make_shared<Vocabulary>();
    preds_.clear();
    for (size_t i = 0; i < num_preds; ++i) {
      preds_.push_back(*v->AddPredicate("P" + std::to_string(i), 1));
    }
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  fotl::Term Var(size_t i) {
    return fotl::Term::Var(fac_->InternVar(i == 0 ? "x" : "y"));
  }

  fotl::Formula Lit(std::mt19937* rng, size_t num_vars) {
    fotl::Formula a = *fac_->Atom(preds_[(*rng)() % preds_.size()],
                                  {Var((*rng)() % num_vars)});
    return (*rng)() % 2 == 0 ? a : fac_->Not(a);
  }

  // Conjunction of 1-2 literals: a safe implication antecedent (its negation
  // NNFs to a disjunction of literals).
  fotl::Formula LitConj(std::mt19937* rng, size_t num_vars) {
    fotl::Formula a = Lit(rng, num_vars);
    return (*rng)() % 2 == 0 ? a : fac_->And(a, Lit(rng, num_vars));
  }

  // Co-safe side: positive atoms under And/Or/Next/Until/Eventually. Only
  // ever used under negation, where NNF turns Until into Release and
  // Eventually into Always — still safe.
  fotl::Formula GenCosafe(std::mt19937* rng, size_t num_vars, int depth) {
    if (depth <= 0) return *fac_->Atom(preds_[(*rng)() % preds_.size()],
                                       {Var((*rng)() % num_vars)});
    switch ((*rng)() % 5) {
      case 0:
        return fac_->And(GenCosafe(rng, num_vars, depth - 1),
                         GenCosafe(rng, num_vars, depth - 1));
      case 1:
        return fac_->Or(GenCosafe(rng, num_vars, depth - 1),
                        GenCosafe(rng, num_vars, depth - 1));
      case 2:
        return fac_->Next(GenCosafe(rng, num_vars, depth - 1));
      case 3:
        return fac_->Until(GenCosafe(rng, num_vars, depth - 1),
                           GenCosafe(rng, num_vars, depth - 1));
      default:
        return fac_->Eventually(GenCosafe(rng, num_vars, depth - 1));
    }
  }

  // Safe grammar: every production stays syntactically safe after NNF.
  fotl::Formula GenSafe(std::mt19937* rng, size_t num_vars, int depth) {
    if (depth <= 0) return Lit(rng, num_vars);
    switch ((*rng)() % 7) {
      case 0:
        return Lit(rng, num_vars);
      case 1:
        return fac_->And(GenSafe(rng, num_vars, depth - 1),
                         GenSafe(rng, num_vars, depth - 1));
      case 2:
        return fac_->Or(GenSafe(rng, num_vars, depth - 1),
                        GenSafe(rng, num_vars, depth - 1));
      case 3:
        return fac_->Next(GenSafe(rng, num_vars, depth - 1));
      case 4:
        return fac_->Always(GenSafe(rng, num_vars, depth - 1));
      case 5:
        return fac_->Implies(LitConj(rng, num_vars),
                             GenSafe(rng, num_vars, depth - 1));
      default:
        return fac_->Not(GenCosafe(rng, num_vars, depth - 1));
    }
  }

  fotl::Formula Quantify(fotl::Formula matrix, size_t num_vars) {
    fotl::Formula phi = matrix;
    for (size_t i = num_vars; i-- > 0;) {
      phi = fac_->Forall(fac_->InternVar(i == 0 ? "x" : "y"), phi);
    }
    return phi;
  }

  // Random transaction over `universe`; with DAG-friendly churn (inserts and
  // deletes of random unary tuples across all predicates).
  Transaction RandomTxn(std::mt19937* rng, const std::vector<Value>& universe) {
    Transaction txn;
    for (PredicateId p : preds_) {
      for (Value v : universe) {
        uint32_t r = (*rng)() % 4;
        if (r == 0) txn.push_back(UpdateOp::Insert(p, {v}));
        if (r == 1) txn.push_back(UpdateOp::Delete(p, {v}));
      }
    }
    return txn;
  }

  // Runs both backends on the same sentence and stream; asserts per-update
  // verdict equality. Returns false if Create rejected the sentence (the
  // generator only produces safe matrices, so this is a hard failure).
  void RunCase(fotl::Formula phi, const std::vector<Transaction>& stream,
               const std::string& label) {
    CheckOptions prog_opts;
    prog_opts.backend = MonitorBackend::kProgression;
    CheckOptions auto_opts;
    auto_opts.backend = MonitorBackend::kAutomaton;
    auto mp = Monitor::Create(fac_, phi, {}, prog_opts);
    ASSERT_TRUE(mp.ok()) << label << ": " << mp.status().ToString();
    auto ma = Monitor::Create(fac_, phi, {}, auto_opts);
    ASSERT_TRUE(ma.ok()) << label << ": " << ma.status().ToString();
    for (size_t t = 0; t < stream.size(); ++t) {
      auto vp = (*mp)->ApplyTransaction(stream[t]);
      auto va = (*ma)->ApplyTransaction(stream[t]);
      ASSERT_TRUE(vp.ok()) << label << " t=" << t << ": "
                           << vp.status().ToString();
      ASSERT_TRUE(va.ok()) << label << " t=" << t << ": "
                           << va.status().ToString();
      ASSERT_EQ(vp->potentially_satisfied, va->potentially_satisfied)
          << label << " t=" << t;
      ASSERT_EQ(vp->permanently_violated, va->permanently_violated)
          << label << " t=" << t;
      EXPECT_EQ(va->backend, MonitorBackend::kAutomaton);
      EXPECT_EQ(vp->backend, MonitorBackend::kProgression);
    }
  }

  VocabularyPtr vocab_;
  std::vector<PredicateId> preds_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_F(BackendDiffTest, RandomSafeSentencesAgreePerUpdate) {
  // Family A: 800 random safe sentences. Streams run over values {1,2,3}
  // with value 4 arriving in the back half — every case with a late fresh
  // element exercises the epoch recompile + word replay path.
  constexpr int kCases = 800;
  for (int c = 0; c < kCases; ++c) {
    std::mt19937 rng(0x9e3779b9u + c);
    Reset(2 + rng() % 2);
    size_t num_vars = 1 + rng() % 2;
    fotl::Formula matrix = GenSafe(&rng, num_vars, 2 + rng() % 3);
    fotl::Formula phi = Quantify(fac_->Always(matrix), num_vars);
    size_t len = 5 + rng() % 4;
    std::vector<Transaction> stream;
    for (size_t t = 0; t < len; ++t) {
      std::vector<Value> universe{1, 2, 3};
      if (t >= len / 2) universe.push_back(4);
      stream.push_back(RandomTxn(&rng, universe));
    }
    RunCase(phi, stream, "caseA#" + std::to_string(c));
  }
}

TEST_F(BackendDiffTest, SpillSizedClosuresAgreePerUpdate) {
  // Family B: the grounded joint formula carries a deep Next-chain per
  // instance, pushing the closure past FlatBits's 256 inline bits, so both
  // backends run the heap-spill bitset path.
  constexpr int kCases = 100;
  for (int c = 0; c < kCases; ++c) {
    std::mt19937 rng(0x85ebca6bu + c);
    Reset(2);
    // G (P0(x) -> X^k P1(x)), k in [60, 120): closure size scales with k and
    // with the number of instances.
    size_t k = 60 + rng() % 60;
    fotl::Formula head = *fac_->Atom(preds_[1], {Var(0)});
    for (size_t i = 0; i < k; ++i) head = fac_->Next(head);
    fotl::Formula matrix =
        fac_->Implies(*fac_->Atom(preds_[0], {Var(0)}), head);
    fotl::Formula phi = Quantify(fac_->Always(matrix), 1);
    size_t len = 4 + rng() % 3;
    std::vector<Transaction> stream;
    for (size_t t = 0; t < len; ++t) {
      stream.push_back(RandomTxn(&rng, {1, 2}));
    }
    RunCase(phi, stream, "caseB#" + std::to_string(c));
  }
}

TEST_F(BackendDiffTest, BatchNonSafeChecksAgree) {
  // Family C: the batch checker with require_safety=false on formulas with
  // positive Until/Eventually — the TransitionSystem's eager SCC-liveness
  // mode (and, where compilation exceeds the clamped budget, its fallback to
  // progression) against the reference two-phase procedure.
  constexpr int kCases = 200;
  int automaton_ran = 0;
  for (int c = 0; c < kCases; ++c) {
    std::mt19937 rng(0xc2b2ae35u + c);
    Reset(2 + rng() % 2);
    size_t num_vars = 1;
    fotl::Formula matrix = GenCosafe(&rng, num_vars, 2 + rng() % 2);
    if (rng() % 2 == 0) {
      matrix = fac_->And(matrix, GenSafe(&rng, num_vars, 2));
    }
    fotl::Formula phi = Quantify(matrix, num_vars);

    History h = *History::Create(vocab_, {});
    size_t len = 2 + rng() % 3;
    for (size_t t = 0; t < len; ++t) {
      ASSERT_TRUE(ApplyTransaction(&h, RandomTxn(&rng, {1, 2})).ok());
    }

    CheckOptions prog_opts;
    prog_opts.backend = MonitorBackend::kProgression;
    prog_opts.require_safety = false;
    prog_opts.want_witness = false;
    CheckOptions auto_opts = prog_opts;
    auto_opts.backend = MonitorBackend::kAutomaton;

    auto rp = CheckPotentialSatisfaction(*fac_, phi, h, {}, prog_opts);
    auto ra = CheckPotentialSatisfaction(*fac_, phi, h, {}, auto_opts);
    ASSERT_TRUE(rp.ok()) << "caseC#" << c << ": " << rp.status().ToString();
    ASSERT_TRUE(ra.ok()) << "caseC#" << c << ": " << ra.status().ToString();
    EXPECT_EQ(rp->potentially_satisfied, ra->potentially_satisfied)
        << "caseC#" << c;
    if (ra->tableau_stats.num_expansions == 0) ++automaton_ran;
  }
  // The clamped-budget fallback must not have swallowed the whole family:
  // most single-variable groundings compile fine.
  EXPECT_GT(automaton_ran, kCases / 2);
}

}  // namespace
}  // namespace checker
}  // namespace tic
