// Tests for the propositional-TL factory, NNF transformation, and printer.

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "ptl/formula.h"
#include "ptl/nnf.h"

namespace tic {
namespace ptl {
namespace {

class PtlFormulaTest : public ::testing::Test {
 protected:
  PtlFormulaTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = fac_.Atom(vocab_->Intern("p"));
    q_ = fac_.Atom(vocab_->Intern("q"));
  }
  PropVocabularyPtr vocab_;
  Factory fac_;
  Formula p_, q_;
};

TEST_F(PtlFormulaTest, HashConsingAndCommutativeCanonicalization) {
  EXPECT_EQ(fac_.And(p_, q_), fac_.And(q_, p_));
  EXPECT_EQ(fac_.Or(p_, q_), fac_.Or(q_, p_));
  EXPECT_NE(fac_.Until(p_, q_), fac_.Until(q_, p_));
  EXPECT_EQ(fac_.Next(p_), fac_.Next(p_));
}

TEST_F(PtlFormulaTest, Folding) {
  EXPECT_EQ(fac_.And(fac_.True(), p_), p_);
  EXPECT_EQ(fac_.And(fac_.False(), p_), fac_.False());
  EXPECT_EQ(fac_.Or(fac_.False(), p_), p_);
  EXPECT_EQ(fac_.Not(fac_.Not(p_)), p_);
  EXPECT_EQ(fac_.Until(fac_.False(), p_), p_);
  EXPECT_EQ(fac_.Until(p_, fac_.True()), fac_.True());
  EXPECT_EQ(fac_.Release(fac_.True(), p_), p_);
  EXPECT_EQ(fac_.Until(fac_.True(), p_), fac_.Eventually(p_));
  EXPECT_EQ(fac_.Release(fac_.False(), p_), fac_.Always(p_));
  EXPECT_EQ(fac_.Eventually(fac_.Eventually(p_)), fac_.Eventually(p_));
  EXPECT_EQ(fac_.Always(fac_.Always(p_)), fac_.Always(p_));
  EXPECT_EQ(fac_.Next(fac_.True()), fac_.True());
}

TEST_F(PtlFormulaTest, Size) {
  EXPECT_EQ(p_->size(), 1u);
  EXPECT_EQ(fac_.Until(p_, q_)->size(), 3u);
  EXPECT_EQ(fac_.Not(fac_.Next(p_))->size(), 3u);
}

TEST_F(PtlFormulaTest, IsLiteral) {
  EXPECT_TRUE(p_->IsLiteral());
  EXPECT_TRUE(fac_.Not(p_)->IsLiteral());
  EXPECT_FALSE(fac_.Next(p_)->IsLiteral());
  EXPECT_FALSE(fac_.And(p_, q_)->IsLiteral());
}

TEST_F(PtlFormulaTest, ToStringRendering) {
  EXPECT_EQ(ToString(fac_, fac_.Until(p_, q_)), "p U q");
  // And is commutative and canonicalized by content fingerprint, so the
  // operand order is deterministic but not the construction order.
  EXPECT_THAT(ToString(fac_, fac_.Not(fac_.And(p_, q_))),
              testing::AnyOf("!(p & q)", "!(q & p)"));
  EXPECT_EQ(ToString(fac_, fac_.Not(fac_.And(p_, q_))),
            ToString(fac_, fac_.Not(fac_.And(q_, p_))));
  EXPECT_EQ(ToString(fac_, fac_.Always(fac_.Eventually(p_))), "G F p");
  EXPECT_EQ(ToString(fac_, fac_.Implies(p_, fac_.Next(q_))), "p -> X q");
}

TEST_F(PtlFormulaTest, NnfRemovesSugar) {
  Formula f = fac_.Not(fac_.Until(p_, q_));
  Formula n = ToNnf(&fac_, f);
  EXPECT_TRUE(IsNnf(n));
  EXPECT_EQ(n, fac_.Release(fac_.Not(p_), fac_.Not(q_)));

  Formula g = fac_.Not(fac_.Implies(p_, fac_.Eventually(q_)));
  Formula gn = ToNnf(&fac_, g);
  EXPECT_TRUE(IsNnf(gn));
  // !(p -> F q) == p & G !q.
  EXPECT_EQ(gn, fac_.And(p_, fac_.Release(fac_.False(), fac_.Not(q_))));
}

TEST_F(PtlFormulaTest, NnfPushesThroughNext) {
  Formula f = fac_.Not(fac_.Next(fac_.And(p_, q_)));
  Formula n = ToNnf(&fac_, f);
  EXPECT_TRUE(IsNnf(n));
  EXPECT_EQ(n, fac_.Next(fac_.Or(fac_.Not(p_), fac_.Not(q_))));
}

TEST_F(PtlFormulaTest, NnfFixedPoint) {
  Formula f = fac_.Not(fac_.Always(fac_.Implies(p_, fac_.Until(p_, q_))));
  Formula n1 = ToNnf(&fac_, f);
  Formula n2 = ToNnf(&fac_, n1);
  EXPECT_TRUE(IsNnf(n1));
  EXPECT_EQ(n1, n2);
}

TEST_F(PtlFormulaTest, IsNnfDetectsViolations) {
  EXPECT_FALSE(IsNnf(fac_.Not(fac_.And(p_, q_))));
  EXPECT_FALSE(IsNnf(fac_.Implies(p_, q_)));
  // Positive F/G are acceptable NNF (the factory folds true U A / false R A
  // back to them); negations below them are not.
  EXPECT_TRUE(IsNnf(fac_.Eventually(p_)));
  EXPECT_FALSE(IsNnf(fac_.Eventually(fac_.Not(fac_.Next(p_)))));
  EXPECT_TRUE(IsNnf(fac_.Release(fac_.Not(p_), q_)));
}

TEST_F(PtlFormulaTest, VocabularyNames) {
  EXPECT_EQ(vocab_->Name(p_->atom()), "p");
  PropId out = 0;
  EXPECT_TRUE(vocab_->Lookup("q", &out));
  EXPECT_EQ(out, q_->atom());
  EXPECT_FALSE(vocab_->Lookup("zzz", &out));
}

}  // namespace
}  // namespace ptl
}  // namespace tic
