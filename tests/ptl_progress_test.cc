// Tests for the Lemma 4.2 phase-1 rewriting (formula progression), including
// the fundamental progression property checked against direct evaluation on
// random words.

#include <gtest/gtest.h>

#include <random>

#include "ptl/progress.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

class ProgressTest : public ::testing::Test {
 protected:
  ProgressTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_id_ = vocab_->Intern("p");
    q_id_ = vocab_->Intern("q");
    p_ = fac_.Atom(p_id_);
    q_ = fac_.Atom(q_id_);
  }

  PropState S(bool p, bool q) {
    PropState s;
    s.Set(p_id_, p);
    s.Set(q_id_, q);
    return s;
  }

  Formula Prog(Formula f, const PropState& s) {
    auto res = Progress(&fac_, f, s);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return *res;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  PropId p_id_, q_id_;
  Formula p_, q_;
};

TEST_F(ProgressTest, AtomsBecomeConstants) {
  EXPECT_EQ(Prog(p_, S(true, false)), fac_.True());
  EXPECT_EQ(Prog(p_, S(false, false)), fac_.False());
  EXPECT_EQ(Prog(fac_.Not(p_), S(false, false)), fac_.True());
}

TEST_F(ProgressTest, NextDropsOneLayer) {
  Formula f = fac_.Next(fac_.Until(p_, q_));
  EXPECT_EQ(Prog(f, S(false, false)), fac_.Until(p_, q_));
}

TEST_F(ProgressTest, UntilUnfolds) {
  Formula u = fac_.Until(p_, q_);
  // q true now: satisfied.
  EXPECT_EQ(Prog(u, S(false, true)), fac_.True());
  // p true, q false: obligation persists.
  EXPECT_EQ(Prog(u, S(true, false)), u);
  // neither: violated.
  EXPECT_EQ(Prog(u, S(false, false)), fac_.False());
}

TEST_F(ProgressTest, AlwaysPersistsOrDies) {
  Formula g = fac_.Always(p_);
  EXPECT_EQ(Prog(g, S(true, false)), g);
  EXPECT_EQ(Prog(g, S(false, false)), fac_.False());
}

TEST_F(ProgressTest, EventuallyPersistsOrSucceeds) {
  Formula f = fac_.Eventually(p_);
  EXPECT_EQ(Prog(f, S(true, false)), fac_.True());
  EXPECT_EQ(Prog(f, S(false, false)), f);
}

TEST_F(ProgressTest, ReleaseUnfolds) {
  Formula r = fac_.Release(p_, q_);
  // q false now: violated.
  EXPECT_EQ(Prog(r, S(true, false)), fac_.False());
  // q true, p true: released.
  EXPECT_EQ(Prog(r, S(true, true)), fac_.True());
  // q true, p false: obligation persists.
  EXPECT_EQ(Prog(r, S(false, true)), r);
}

TEST_F(ProgressTest, ProgressThroughWordShortCircuitsOnFalse) {
  Formula g = fac_.Always(p_);
  Word w{S(true, false), S(false, false), S(true, false)};
  auto res = ProgressThroughWord(&fac_, g, w);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, fac_.False());
}

TEST_F(ProgressTest, SubmitOnceShapedFormula) {
  // G (p -> X G !p): after p, !p must hold forever.
  Formula f = fac_.Always(fac_.Implies(p_, fac_.Next(fac_.Always(fac_.Not(p_)))));
  Formula r1 = Prog(f, S(true, false));
  // Residual: G !p & G(p -> X G !p): satisfiable but p banned.
  Formula r2 = Prog(r1, S(false, false));
  EXPECT_NE(r2, fac_.False());
  Formula r3 = Prog(r2, S(true, false));  // p resubmitted
  EXPECT_EQ(r3, fac_.False());
}

// ---------------------------------------------------------------------------
// The progression property (the correctness content of the Sistla–Wolfson
// rewriting): for every formula f and infinite word w,
//     w |= f  iff  w[1..] |= Progress(f, w[0]).
// Checked on random formulas over random ultimately periodic words.
// ---------------------------------------------------------------------------

class ProgressionPropertyTest : public ::testing::TestWithParam<int> {};

Formula RandomFormula(Factory* fac, std::mt19937* rng, const std::vector<Formula>& atoms,
                      int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 9);
  switch (pick(*rng)) {
    case 0:
      return atoms[(*rng)() % atoms.size()];
    case 1:
      return fac->Not(atoms[(*rng)() % atoms.size()]);
    case 2:
      return fac->Not(RandomFormula(fac, rng, atoms, depth - 1));
    case 3:
      return fac->And(RandomFormula(fac, rng, atoms, depth - 1),
                      RandomFormula(fac, rng, atoms, depth - 1));
    case 4:
      return fac->Or(RandomFormula(fac, rng, atoms, depth - 1),
                     RandomFormula(fac, rng, atoms, depth - 1));
    case 5:
      return fac->Next(RandomFormula(fac, rng, atoms, depth - 1));
    case 6:
      return fac->Until(RandomFormula(fac, rng, atoms, depth - 1),
                        RandomFormula(fac, rng, atoms, depth - 1));
    case 7:
      return fac->Release(RandomFormula(fac, rng, atoms, depth - 1),
                          RandomFormula(fac, rng, atoms, depth - 1));
    case 8:
      return fac->Eventually(RandomFormula(fac, rng, atoms, depth - 1));
    default:
      return fac->Always(RandomFormula(fac, rng, atoms, depth - 1));
  }
}

TEST_P(ProgressionPropertyTest, ProgressionMatchesEvaluation) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  PropId a_id = vocab->Intern("a");
  PropId b_id = vocab->Intern("b");
  std::vector<Formula> atoms = {fac.Atom(a_id), fac.Atom(b_id)};
  std::mt19937 rng(1000 + GetParam());

  Formula f = RandomFormula(&fac, &rng, atoms, 4);

  // Random lasso word.
  auto random_state = [&]() {
    PropState s;
    s.Set(a_id, rng() % 2 == 0);
    s.Set(b_id, rng() % 2 == 0);
    return s;
  };
  UltimatelyPeriodicWord w;
  size_t stem = rng() % 3, loop = 1 + rng() % 3;
  for (size_t i = 0; i < stem; ++i) w.prefix.push_back(random_state());
  for (size_t i = 0; i < loop; ++i) w.loop.push_back(random_state());

  // w |= f  iff  (w shifted by one) |= Progress(f, w[0]).
  auto lhs = Evaluate(w, f, 0);
  ASSERT_TRUE(lhs.ok());
  auto prog = Progress(&fac, f, w.StateAt(0));
  ASSERT_TRUE(prog.ok());
  // Build the shifted word.
  UltimatelyPeriodicWord w1;
  if (!w.prefix.empty()) {
    w1.prefix.assign(w.prefix.begin() + 1, w.prefix.end());
    w1.loop = w.loop;
  } else {
    // Rotate the loop by one.
    for (size_t i = 0; i < w.loop.size(); ++i) {
      w1.loop.push_back(w.loop[(i + 1) % w.loop.size()]);
    }
  }
  auto rhs = Evaluate(w1, *prog, 0);
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(*lhs, *rhs) << ToString(fac, f);

  // Multi-step: progressing through the whole stem plus one full loop leaves a
  // residual whose truth on the loop equals the original truth.
  Word consumed;
  for (size_t i = 0; i < w.prefix.size() + w.loop.size(); ++i) {
    consumed.push_back(w.StateAt(i));
  }
  auto residual = ProgressThroughWord(&fac, f, consumed);
  ASSERT_TRUE(residual.ok());
  UltimatelyPeriodicWord tail;  // the word from position stem+loop on
  for (size_t i = 0; i < w.loop.size(); ++i) {
    tail.loop.push_back(w.StateAt(w.prefix.size() + (0 + i) % w.loop.size()));
  }
  auto tail_eval = Evaluate(tail, *residual, 0);
  ASSERT_TRUE(tail_eval.ok());
  EXPECT_EQ(*lhs, *tail_eval);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgressionPropertyTest, ::testing::Range(0, 80));

}  // namespace
}  // namespace ptl
}  // namespace tic
