// Tests for verdict provenance: the Diagnosis a monitor assembles when it
// flips to permanently violated (grounded substitution, violating letter
// delta, residual trajectory, collapsed subformula), trigger-firing
// explanations, and — the load-bearing part — the differential witness-replay
// suite: on >=500 generated safety cases, every violated verdict must carry a
// Diagnosis whose reconstructed transaction stream, replayed into a FRESH
// monitor, reproduces the violation at the same update index.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/monitor.h"
#include "checker/provenance.h"
#include "checker/trigger.h"
#include "fotl/parser.h"
#include "testing/generators.h"
#include "testing/reproducer.h"

namespace tic {
namespace checker {
namespace {

namespace tt = tic::testing;

class ProvenanceTest : public ::testing::Test {
 protected:
  ProvenanceTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    submit_once_ =
        *fotl::Parse(fac_.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
  }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills,
                  std::vector<Value> unsubs = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    for (Value v : unsubs) t.push_back(UpdateOp::Delete(sub_, {v}));
    return t;
  }

  // Drives the canonical submit-once violation: Sub(7), withdraw, resubmit.
  // The violation lands at t=2.
  MonitorVerdict PlantViolation(Monitor* m) {
    EXPECT_TRUE(m->ApplyTransaction(Txn({7}, {})).ok());
    EXPECT_TRUE(m->ApplyTransaction(Txn({}, {}, {7})).ok());
    auto v = m->ApplyTransaction(Txn({7}, {}));
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
  fotl::Formula submit_once_ = nullptr;
};

TEST_F(ProvenanceTest, PlantedViolationYieldsGroundedDiagnosis) {
  auto m = *Monitor::Create(fac_, submit_once_);
  MonitorVerdict v = PlantViolation(m.get());
  ASSERT_TRUE(v.permanently_violated);
  ASSERT_FALSE(v.explanations().empty());
  EXPECT_GE(v.num_culprits, 1u);

  const Diagnosis& d = v.explanations().front();
  EXPECT_EQ(d.time, 2u);
  ASSERT_FALSE(d.joint);
  // The culprit substitution is x=7, by name.
  EXPECT_NE(d.assignment_text.find("x=7"), std::string::npos)
      << d.assignment_text;
  // The violating delta contains the fatal re-insert of Sub(7).
  bool saw_insert = false;
  for (const DiagnosisDelta& delta : d.delta) {
    if (delta.inserted && delta.atom == "Sub(7)") saw_insert = true;
  }
  EXPECT_TRUE(saw_insert) << d.Render();
  // A subformula was pinned via the closure index, and the trajectory ends at
  // the violation instant.
  EXPECT_NE(d.subformula, nullptr);
  ASSERT_FALSE(d.trajectory.empty());
  EXPECT_EQ(d.trajectory.back().time, d.time);
  EXPECT_NE(d.grounded, nullptr);
  EXPECT_NE(d.factory, nullptr);
}

TEST_F(ProvenanceTest, RenderIsHumanReadable) {
  auto m = *Monitor::Create(fac_, submit_once_);
  MonitorVerdict v = PlantViolation(m.get());
  ASSERT_FALSE(v.explanations().empty());
  std::string text = v.explanations().front().Render();
  EXPECT_NE(text.find("violation at t=2"), std::string::npos) << text;
  EXPECT_NE(text.find("x=7"), std::string::npos) << text;
  EXPECT_NE(text.find("+Sub(7)"), std::string::npos) << text;
  EXPECT_NE(text.find("trajectory"), std::string::npos) << text;
}

TEST_F(ProvenanceTest, DiagnosisPersistsOnDeadVerdicts) {
  auto m = *Monitor::Create(fac_, submit_once_);
  MonitorVerdict flip = PlantViolation(m.get());
  ASSERT_FALSE(flip.explanations().empty());
  auto later = m->ApplyTransaction(Txn({}, {3}));
  ASSERT_TRUE(later.ok());
  ASSERT_TRUE(later->permanently_violated);
  ASSERT_FALSE(later->explanations().empty());
  EXPECT_EQ(later->explanations().front().time, 2u);
  // Same shared diagnosis, not a rebuilt one.
  EXPECT_EQ(later->diagnoses.get(), flip.diagnoses.get());
}

TEST_F(ProvenanceTest, ProvenanceOffYieldsNoDiagnosis) {
  CheckOptions options;
  options.provenance = false;
  auto m = *Monitor::Create(fac_, submit_once_, {}, options);
  MonitorVerdict v = PlantViolation(m.get());
  ASSERT_TRUE(v.permanently_violated);
  EXPECT_TRUE(v.explanations().empty());
  EXPECT_EQ(v.num_culprits, 0u);
}

TEST_F(ProvenanceTest, AllModesAndBackendsProduceADiagnosis) {
  struct Config {
    MonitorMode mode;
    MonitorBackend backend;
    const char* label;
  };
  const Config configs[] = {
      {MonitorMode::kEager, MonitorBackend::kAutomaton, "eager/automaton"},
      {MonitorMode::kEager, MonitorBackend::kProgression, "eager/progression"},
      {MonitorMode::kLazy, MonitorBackend::kProgression, "lazy"},
      {MonitorMode::kEagerHistoryLess, MonitorBackend::kAutomaton,
       "historyless/automaton"},
  };
  for (const Config& cfg : configs) {
    CheckOptions options;
    options.backend = cfg.backend;
    auto m = *Monitor::Create(fac_, submit_once_, {}, options, cfg.mode);
    MonitorVerdict v = PlantViolation(m.get());
    ASSERT_TRUE(v.permanently_violated) << cfg.label;
    ASSERT_FALSE(v.explanations().empty()) << cfg.label;
    const Diagnosis& d = v.explanations().front();
    EXPECT_EQ(d.time, 2u) << cfg.label;
    EXPECT_FALSE(d.Render().empty()) << cfg.label;
  }
}

TEST_F(ProvenanceTest, WitnessReplayReproducesThePlantedViolation) {
  auto m = *Monitor::Create(fac_, submit_once_);
  MonitorVerdict v = PlantViolation(m.get());
  ASSERT_FALSE(v.explanations().empty());
  auto replay = ReplayHistory(fac_, submit_once_, m->history());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->violated);
  EXPECT_EQ(replay->violated_at, v.explanations().front().time);
  EXPECT_EQ(replay->updates, m->history().length());
}

TEST_F(ProvenanceTest, TransactionsFromHistoryRebuildStateForState) {
  auto m = *Monitor::Create(fac_, submit_once_);
  ASSERT_TRUE(m->ApplyTransaction(Txn({1, 2}, {2})).ok());
  ASSERT_TRUE(m->ApplyTransaction(Txn({3}, {}, {1})).ok());
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {3})).ok());
  auto txns = TransactionsFromHistory(m->history());
  ASSERT_TRUE(txns.ok());
  History rebuilt = *History::Create(vocab_, {});
  for (const Transaction& t : *txns) {
    ASSERT_TRUE(ApplyTransaction(&rebuilt, t).ok());
  }
  ASSERT_EQ(rebuilt.length(), m->history().length());
  for (size_t t = 0; t < rebuilt.length(); ++t) {
    for (PredicateId p : {sub_, fill_}) {
      for (Value e : {1, 2, 3}) {
        EXPECT_EQ(rebuilt.state(t).Holds(p, {e}),
                  m->history().state(t).Holds(p, {e}))
            << "t=" << t << " pred=" << p << " elem=" << e;
      }
    }
  }
}

TEST_F(ProvenanceTest, TriggerFiringsCarryAnExplanation) {
  auto mgr = *TriggerManager::Create(fac_);
  ASSERT_TRUE(
      mgr->AddTrigger("resubmitted",
                      *fotl::Parse(fac_.get(), "F (Sub(x) & X F Sub(x))"))
          .ok());
  ASSERT_TRUE(mgr->OnTransaction(Txn({7}, {})).ok());
  ASSERT_TRUE(mgr->OnTransaction(Txn({}, {}, {7})).ok());
  auto firings = mgr->OnTransaction(Txn({7}, {}));
  ASSERT_TRUE(firings.ok());
  ASSERT_EQ(firings->size(), 1u);
  const std::string& text = (*firings)[0].explanation;
  EXPECT_NE(text.find("\"resubmitted\""), std::string::npos) << text;
  EXPECT_NE(text.find("t=2"), std::string::npos) << text;
  EXPECT_NE(text.find("x=7"), std::string::npos) << text;
  EXPECT_NE(text.find("potential satisfaction"), std::string::npos) << text;
}

TEST_F(ProvenanceTest, TriggerExplanationsAreOptional) {
  CheckOptions options;
  options.provenance = false;
  auto mgr = *TriggerManager::Create(fac_, {}, options);
  ASSERT_TRUE(
      mgr->AddTrigger("resubmitted",
                      *fotl::Parse(fac_.get(), "F (Sub(x) & X F Sub(x))"))
          .ok());
  ASSERT_TRUE(mgr->OnTransaction(Txn({7}, {})).ok());
  ASSERT_TRUE(mgr->OnTransaction(Txn({}, {}, {7})).ok());
  auto firings = mgr->OnTransaction(Txn({7}, {}));
  ASSERT_TRUE(firings.ok());
  ASSERT_EQ(firings->size(), 1u);
  EXPECT_TRUE((*firings)[0].explanation.empty());
}

// ---------------------------------------------------------------------------
// The differential witness-replay suite (ISSUE acceptance bar): >=500 seeded
// generated cases; every violated verdict must carry a Diagnosis, and a fresh
// monitor fed the reconstructed stream must reach the same verdict at the
// same index.

void RunDifferentialFamily(uint32_t seed_base, int num_cases, MonitorMode mode,
                           MonitorBackend backend, bool cohorts,
                           int* violated_count) {
  auto replay_seed = tt::ReplaySeedFromEnv();
  for (int c = 0; c < num_cases; ++c) {
    if (replay_seed && *replay_seed != static_cast<uint64_t>(c)) continue;
    tt::Entropy ent(seed_base + static_cast<uint32_t>(c));
    tt::FotlCase kase = tt::GenerateSafetyCase(&ent);
    const std::string label =
        "case#" + std::to_string(c) + " seed_base=" + std::to_string(seed_base);

    CheckOptions options;
    options.backend = backend;
    options.cohort_stepping = cohorts;
    auto monitor =
        Monitor::Create(kase.factory, kase.sentence, {}, options, mode);
    ASSERT_TRUE(monitor.ok()) << label << ": " << monitor.status().ToString()
                              << "\nreproducer:\n" << tt::SerializeCase(kase);

    bool violated = false;
    size_t violated_at = 0;
    for (size_t i = 0; i < kase.stream.size(); ++i) {
      auto v = (*monitor)->ApplyTransaction(kase.stream[i]);
      ASSERT_TRUE(v.ok()) << label << ": " << v.status().ToString();
      if (violated) continue;  // dead monitor: diagnosis checked below
      if (v->permanently_violated) {
        violated = true;
        violated_at = i;
        ASSERT_FALSE(v->explanations().empty())
            << label << ": violated at update " << i
            << " without a diagnosis\nreproducer:\n" << tt::SerializeCase(kase);
        const Diagnosis& d = v->explanations().front();
        EXPECT_EQ(d.time, i) << label;
        EXPECT_FALSE(d.Render().empty()) << label;
      }
    }
    if (!violated) continue;
    ++*violated_count;

    auto outcome = ReplayHistory(kase.factory, kase.sentence,
                                 (*monitor)->history(), options, mode);
    ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->violated)
        << label << ": replay lost the violation\nreproducer:\n"
        << tt::SerializeCase(kase);
    EXPECT_EQ(outcome->violated_at, violated_at)
        << label << ": replay moved the violation\nreproducer:\n"
        << tt::SerializeCase(kase);
  }
}

TEST(ProvenanceDifferentialTest, EagerAutomatonWitnessesReplay) {
  int violated = 0;
  RunDifferentialFamily(0x51a7e001u, 300, MonitorMode::kEager,
                        MonitorBackend::kAutomaton, /*cohorts=*/true,
                        &violated);
  // The generator's churn streams violate often; an unviolated sweep would
  // mean this suite tests nothing.
  EXPECT_GE(violated, 50) << "suspiciously few violations";
}

TEST(ProvenanceDifferentialTest, EagerProgressionWitnessesReplay) {
  int violated = 0;
  RunDifferentialFamily(0x51a7e002u, 150, MonitorMode::kEager,
                        MonitorBackend::kProgression, /*cohorts=*/false,
                        &violated);
  EXPECT_GE(violated, 25);
}

TEST(ProvenanceDifferentialTest, LazyModeWitnessesReplay) {
  int violated = 0;
  RunDifferentialFamily(0x51a7e003u, 100, MonitorMode::kLazy,
                        MonitorBackend::kProgression, /*cohorts=*/false,
                        &violated);
  EXPECT_GE(violated, 15);
}

TEST(ProvenanceDifferentialTest, HistoryLessModeWitnessesReplay) {
  int violated = 0;
  RunDifferentialFamily(0x51a7e004u, 100, MonitorMode::kEagerHistoryLess,
                        MonitorBackend::kAutomaton, /*cohorts=*/true,
                        &violated);
  EXPECT_GE(violated, 15);
}

}  // namespace
}  // namespace checker
}  // namespace tic
