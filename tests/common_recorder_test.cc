// Tests for the flight recorder (common/telemetry/recorder.h): ring write /
// snapshot ordering, wrap + dropped accounting, the binary dump round-trip,
// JSON export, the SIGUSR1 dump hook, snapshot-under-concurrent-writers (the
// TSan preset runs this file), and the stall watchdog.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/telemetry/recorder.h"
#include "common/telemetry/telemetry.h"

namespace tic {
namespace telemetry {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetRecorderEnabled(true);
    EnsureThreadRing();
    ResetRecorder();
  }
  void TearDown() override {
    SetRecorderEnabled(true);
    ResetRecorder();
  }

  static std::string TmpPath(const char* leaf) {
    return ::testing::TempDir() + "/" + leaf;
  }
};

TEST_F(RecorderTest, SnapshotPreservesPayloadAndOrder) {
  for (uint64_t i = 0; i < 10; ++i) {
    RecordEvent(EventType::kTxnApplied, i, 2 * i, 3 * i);
  }
  std::vector<RecordedEvent> events = SnapshotRecorder();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].type, EventType::kTxnApplied);
    EXPECT_EQ(events[i].a, i);
    EXPECT_EQ(events[i].b, 2 * i);
    EXPECT_EQ(events[i].c, 3 * i);
    if (i > 0) {
      // Same thread: per-thread seq is strictly increasing, timestamps are
      // monotone after calibration.
      EXPECT_EQ(events[i].tid, events[i - 1].tid);
      EXPECT_GT(events[i].seq, events[i - 1].seq);
      EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    }
  }
}

TEST_F(RecorderTest, TicRecordMacroRespectsTheRuntimeGate) {
  TIC_RECORD(kLetterFlip, 1, 1, ~uint64_t{0});
  SetRecorderEnabled(false);
  TIC_RECORD(kLetterFlip, 2, 0, ~uint64_t{0});
  SetRecorderEnabled(true);
  std::vector<RecordedEvent> events = SnapshotRecorder();
#ifdef TIC_TELEMETRY_ENABLED
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 1u);
#else
  // Compiled out entirely: neither record lands.
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(RecorderTest, WrapOverwritesOldestAndCountsDropped) {
  const uint64_t dropped_before = RecorderDropped();
  // A fresh thread picks up the reduced capacity; existing rings keep theirs.
  SetRecorderRingCapacity(64);
  std::thread writer([] {
    for (uint64_t i = 0; i < 64 + 100; ++i) {
      RecordEvent(EventType::kMemoSpill, i, 0, 0);
    }
  });
  writer.join();
  SetRecorderRingCapacity(4096);  // restore the default for later tests
  std::vector<RecordedEvent> events = SnapshotRecorder();
  // Only the newest 64 of the writer's events survive, and they are the tail.
  ASSERT_EQ(events.size(), 64u);
  for (const RecordedEvent& e : events) {
    EXPECT_EQ(e.type, EventType::kMemoSpill);
    EXPECT_GE(e.a, 100u);
  }
  EXPECT_GE(RecorderDropped() - dropped_before, 100u);
}

TEST_F(RecorderTest, BinaryDumpRoundTrips) {
  for (uint64_t i = 0; i < 25; ++i) {
    RecordEvent(EventType::kVerdictChange, i, i % 2, 100 + i);
  }
  const std::string path = TmpPath("recorder_roundtrip.ticrec");
  ASSERT_TRUE(DumpRecorder(path));
  std::vector<RecordedEvent> loaded;
  std::string error;
  ASSERT_TRUE(LoadRecorderDump(path, &loaded, &error)) << error;
  std::vector<RecordedEvent> live = SnapshotRecorder();
  ASSERT_EQ(loaded.size(), live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(loaded[i].type, live[i].type);
    EXPECT_EQ(loaded[i].seq, live[i].seq);
    EXPECT_EQ(loaded[i].tid, live[i].tid);
    EXPECT_EQ(loaded[i].a, live[i].a);
    EXPECT_EQ(loaded[i].b, live[i].b);
    EXPECT_EQ(loaded[i].c, live[i].c);
  }
  std::remove(path.c_str());
}

TEST_F(RecorderTest, ParseRejectsCorruptDumps) {
  std::vector<RecordedEvent> out;
  std::string error;
  EXPECT_FALSE(ParseRecorderDump("BOGUS!!!", 8, &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseRecorderDump("TICREC01", 8, &out, &error));  // no header
}

TEST_F(RecorderTest, JsonExportNamesEventsAndCalibration) {
  RecordEvent(EventType::kEpochReset, 5, 3, 1);
  std::string json = RecorderJson();
  EXPECT_NE(json.find("\"calibration\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("epoch_reset"), std::string::npos);
}

TEST_F(RecorderTest, Sigusr1HookDumpsToTheConfiguredPath) {
  const std::string path = TmpPath("recorder_sigusr1.ticrec");
  InstallRecorderDumpHook(path);
  for (uint64_t i = 0; i < 12; ++i) {
    RecordEvent(EventType::kCohortRebuild, i, i, i);
  }
  ASSERT_EQ(raise(SIGUSR1), 0);
  std::vector<RecordedEvent> loaded;
  std::string error;
  ASSERT_TRUE(LoadRecorderDump(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 12u);
  EXPECT_EQ(loaded.front().type, EventType::kCohortRebuild);
  std::remove(path.c_str());
}

TEST_F(RecorderTest, SnapshotUnderConcurrentWritersIsConsistent) {
  // Writers hammer their rings while the main thread snapshots: the seqlock
  // protocol must never surface a torn slot (payload from one event, type
  // from another). Writers tag a == b == c, so any mismatch is a tear.
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<int> running{kWriters};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &running] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        uint64_t tag = (static_cast<uint64_t>(w) << 32) | i;
        RecordEvent(EventType::kLetterFlip, tag, tag, tag);
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  do {
    std::vector<RecordedEvent> events = SnapshotRecorder();
    for (const RecordedEvent& e : events) {
      if (e.type != EventType::kLetterFlip) continue;
      ASSERT_EQ(e.a, e.b);
      ASSERT_EQ(e.a, e.c);
    }
  } while (running.load(std::memory_order_relaxed) > 0);
  for (auto& t : writers) t.join();
  EXPECT_GE(RecorderThreadCount(), static_cast<size_t>(kWriters));
}

TEST_F(RecorderTest, WatchdogFiresOnOverrunAndDumps) {
  const std::string path = TmpPath("recorder_watchdog.ticrec");
  StallWatchdog::Options options;
  options.deadline_ms = 5;
  options.dump_path = path;
  StallWatchdog dog(options);
  {
    StallWatchdog::Scope scope(&dog);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  EXPECT_GE(dog.fires(), 1u);
  // The fire is both recorded and dumped.
  bool saw_fire = false;
  for (const RecordedEvent& e : SnapshotRecorder()) {
    if (e.type == EventType::kWatchdogFire) {
      saw_fire = true;
      EXPECT_EQ(e.b, 5u);  // deadline_ms payload
    }
  }
  EXPECT_TRUE(saw_fire);
  std::vector<RecordedEvent> loaded;
  std::string error;
  ASSERT_TRUE(LoadRecorderDump(path, &loaded, &error)) << error;
  EXPECT_FALSE(loaded.empty());
  std::remove(path.c_str());
}

TEST_F(RecorderTest, WatchdogStaysQuietWithinDeadline) {
  StallWatchdog::Options options;
  options.deadline_ms = 2000;
  StallWatchdog dog(options);
  for (int i = 0; i < 100; ++i) {
    StallWatchdog::Scope scope(&dog);
  }
  EXPECT_EQ(dog.fires(), 0u);
  StallWatchdog::Scope null_scope(nullptr);  // tolerated
}

}  // namespace
}  // namespace telemetry
}  // namespace tic
