// Regression tests for pathologically deep formulas: the NNF transformation,
// the syntactic safety walks, and the tableau branch expansion must either
// succeed iteratively or fail with ResourceExhausted — never overflow the
// native call stack.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "checker/grounding.h"
#include "checker/monitor.h"
#include "db/history.h"
#include "fotl/factory.h"
#include "ptl/formula.h"
#include "ptl/nnf.h"
#include "ptl/safety.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {
namespace {

constexpr size_t kDepth = 100000;

class DeepFormulaTest : public ::testing::Test {
 protected:
  DeepFormulaTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {}

  PropId Letter(size_t i) { return vocab_->Intern("p" + std::to_string(i)); }

  PropVocabularyPtr vocab_;
  Factory fac_;
};

TEST_F(DeepFormulaTest, NnfOfDeepRightNestedConjunctionUnderNot) {
  // !(p0 & (p1 & (p2 & ...))) with ~100k distinct letters: the recursive
  // builder would need ~100k native stack frames; the explicit-stack one must
  // produce a proper NNF (a right-nested disjunction of negated literals).
  Formula f = fac_.Atom(Letter(kDepth));
  for (size_t i = kDepth; i-- > 0;) {
    f = fac_.And(fac_.Atom(Letter(i)), f);
  }
  Formula n = ToNnf(&fac_, fac_.Not(f));
  EXPECT_TRUE(IsNnf(n));
  EXPECT_EQ(n->kind(), Kind::kOr);
  // NNF is an involution target: renormalizing is a no-op.
  EXPECT_EQ(ToNnf(&fac_, n), n);
}

TEST_F(DeepFormulaTest, SafetyWalkHandlesDeepNesting) {
  // The safety test runs ToNnf plus a full-formula walk; both must cope with
  // ~100k nesting levels.
  Formula f = fac_.Atom(Letter(0));
  for (size_t i = 1; i <= kDepth; ++i) {
    f = fac_.And(fac_.Atom(Letter(i)), fac_.Next(f));
  }
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, f));
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, fac_.And(f, fac_.Eventually(fac_.Atom(Letter(0))))));
}

TEST_F(DeepFormulaTest, BranchDepthGuardReportsResourceExhausted) {
  // A conjunction of k disjunctions over distinct letters forces one
  // disjunctive split per conjunct along every branch — the expansion must
  // recurse k deep before emitting any state, so the depth guard has to turn
  // the blow-up into ResourceExhausted instead of a native stack overflow.
  constexpr size_t kConjuncts = 2000;
  Formula f = fac_.True();
  for (size_t i = 0; i < kConjuncts; ++i) {
    f = fac_.And(f, fac_.Or(fac_.Atom(Letter(2 * i)), fac_.Atom(Letter(2 * i + 1))));
  }
  TableauOptions opts;
  opts.max_branch_depth = 200;
  auto r = CheckSat(&fac_, f, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST_F(DeepFormulaTest, DeepRightNestedDisjunctionStillDecided) {
  // Right-nested alternatives are consumed iteratively within one frame, so a
  // deep right-nested disjunction needs no depth at all.
  Formula f = fac_.Atom(Letter(kDepth));
  for (size_t i = kDepth; i-- > 0;) {
    f = fac_.Or(fac_.Atom(Letter(i)), f);
  }
  auto r = CheckSat(&fac_, f, TableauOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->satisfiable);
}

// Checker-side deep-matrix coverage: Monitor::Create's safety-skeleton walk
// and GroundMatrix, plus grounding's builtin-atom scan, are explicit-stack
// traversals — a ~100k-deep first-order matrix must not overflow the native
// call stack on the way to a verdict (or a clean NotSupported).

TEST_F(DeepFormulaTest, MonitorCreateHandlesDeepMatrix) {
  auto v = std::make_shared<Vocabulary>();
  PredicateId p = *v->AddPredicate("P", 1);
  VocabularyPtr vocab = v;
  auto ffac = std::make_shared<fotl::FormulaFactory>(vocab);
  fotl::VarId x = ffac->InternVar("x");
  // forall x . (P(x) & X (P(x) & X (... ~50k levels ...))) — a safe matrix
  // deep enough that both the skeleton-abstraction walk and the grounding
  // walk would need one native frame per level if they recursed.
  constexpr size_t kMatrixDepth = 50000;
  fotl::Formula body = *ffac->Atom(p, {fotl::Term::Var(x)});
  for (size_t i = 0; i < kMatrixDepth; ++i) {
    body = ffac->And(*ffac->Atom(p, {fotl::Term::Var(x)}), ffac->Next(body));
  }
  fotl::Formula phi = ffac->Forall(x, body);
  auto m = checker::Monitor::Create(ffac, phi);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
}

TEST_F(DeepFormulaTest, GroundingRejectsDeepBuiltinMatrixWithoutOverflow) {
  auto v = std::make_shared<Vocabulary>();
  PredicateId p = *v->AddPredicate("P", 1);
  PredicateId zero = *v->AddBuiltin("Zero", Builtin::kZero);
  VocabularyPtr vocab = v;
  auto ffac = std::make_shared<fotl::FormulaFactory>(vocab);
  fotl::VarId x = ffac->InternVar("x");
  // The builtin sits at the very bottom of a ~100k-deep Next/And chain, so
  // the builtin-atom scan must walk the entire chain before it can reject.
  fotl::Formula body = *ffac->Atom(zero, {fotl::Term::Var(x)});
  for (size_t i = 0; i < kDepth; ++i) {
    body = ffac->And(*ffac->Atom(p, {fotl::Term::Var(x)}), ffac->Next(body));
  }
  fotl::Formula phi = ffac->Forall(x, body);
  History h = *History::Create(vocab, {});
  auto g = checker::GroundUniversal(*ffac, phi, h);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsNotSupported()) << g.status().ToString();
}

}  // namespace
}  // namespace ptl
}  // namespace tic
