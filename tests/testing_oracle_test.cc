// The metamorphic oracle kit at scale: each paper-derived identity runs over
// >= 500 seeded generated cases. Together with the ported differential suites
// (tableau-engine equality over 1000+120 formulas, backend equality over
// 800+100 safety cases) this gives every identity in src/testing/oracles.h a
// sustained randomized regression:
//
//   - prefix-closure of Pref(C) (Section 2): verdicts monotone, permanent
//     violations permanent;
//   - monitor-vs-batch agreement (incremental Lemma 4.2 vs from-scratch);
//   - renaming invariance (Theorem 4.1 depends only on the history pattern);
//   - trigger duality (a trigger fires for theta iff !C(theta) is not
//     potentially satisfied).
//
// Failure messages end in the serialized reproducer; re-run one case with
// TIC_REPLAY_SEED=<n>.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"

namespace tic {
namespace testing {
namespace {

// Slightly tighter than the family-A defaults: the closure oracles run a
// from-scratch batch check per stream prefix, so keep matrices and streams
// small enough that 500 cases stay fast under the sanitizer presets too.
SafetyCaseOptions LightOptions() {
  SafetyCaseOptions options;
  options.max_depth = 3;
  options.min_stream = 4;
  options.max_stream = 6;
  return options;
}

void RunOracleSweep(const char* label, uint32_t seed_base, int cases,
                    const std::function<Result<OracleResult>(const FotlCase&)>& oracle,
                    const SafetyCaseOptions& options) {
  auto replay = ReplaySeedFromEnv();
  for (int c = 0; c < cases; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    Entropy ent(seed_base + static_cast<uint32_t>(c));
    FotlCase kase = GenerateSafetyCase(&ent, options);
    auto r = oracle(kase);
    ASSERT_TRUE(r.ok()) << label << "#" << c << ": " << r.status().ToString()
                        << "\nreproducer:\n" << SerializeCase(kase);
    ASSERT_TRUE(r->pass) << label << "#" << c
                         << " (re-run with TIC_REPLAY_SEED=" << c
                         << "): " << r->detail;
  }
}

TEST(OracleKitTest, PrefixClosureHoldsOnRandomSafetyCases) {
  RunOracleSweep("prefix-closure", 0xa511e9b3u, 500, PrefixClosureHolds,
                 LightOptions());
}

TEST(OracleKitTest, MonitorMatchesBatchOnRandomSafetyCases) {
  RunOracleSweep("monitor-vs-batch", 0x27d4eb2fu, 500, MonitorMatchesBatch,
                 LightOptions());
}

TEST(OracleKitTest, RenamingInvariantOnRandomSafetyCases) {
  // v -> 5 - v is a bijection on the generated value range {1,2,3,4}
  // (universe {1,2,3} plus the fresh element 4), so it permutes every stream
  // while preserving the equality pattern the Theorem 4.1 construction sees.
  auto perm = [](Value v) { return 5 - v; };
  RunOracleSweep(
      "renaming", 0x165667b1u, 500,
      [&perm](const FotlCase& c) { return RenamingInvariant(c, perm); },
      SafetyCaseOptions{});
}

TEST(OracleKitTest, TriggerDualityHoldsOnRandomConditions) {
  auto replay = ReplaySeedFromEnv();
  for (int c = 0; c < 500; ++c) {
    if (replay && *replay != static_cast<uint64_t>(c)) continue;
    Entropy ent(0xd6e8feb8u + static_cast<uint32_t>(c));
    FotlCase kase = GenerateTriggerCase(&ent);
    auto r = TriggerDualityHolds(kase);
    ASSERT_TRUE(r.ok()) << "trigger-duality#" << c << ": "
                        << r.status().ToString() << "\nreproducer:\n"
                        << SerializeCase(kase);
    ASSERT_TRUE(r->pass) << "trigger-duality#" << c
                         << " (re-run with TIC_REPLAY_SEED=" << c
                         << "): " << r->detail;
  }
}

}  // namespace
}  // namespace testing
}  // namespace tic
