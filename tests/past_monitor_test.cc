// Tests for the Past FOTL baseline (history-less checking, Chomicki [3]):
// correctness against the direct finite-history evaluator, first-violation
// reporting, auxiliary-state boundedness, and fresh-element canonicalization.

#include <gtest/gtest.h>

#include <random>

#include "fotl/classify.h"
#include "fotl/evaluator.h"
#include "fotl/parser.h"
#include "past/past_monitor.h"

namespace tic {
namespace past {
namespace {

class PastMonitorTest : public ::testing::Test {
 protected:
  PastMonitorTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  fotl::Formula Parse_(const std::string& s) { return *fotl::Parse(fac_.get(), s); }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills,
                  std::vector<Value> unsubs = {}, std::vector<Value> unfills = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    for (Value v : unsubs) t.push_back(UpdateOp::Delete(sub_, {v}));
    for (Value v : unfills) t.push_back(UpdateOp::Delete(fill_, {v}));
    return t;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_F(PastMonitorTest, CreateValidatesShape) {
  EXPECT_TRUE(PastMonitor::Create(fac_, Parse_("forall x . G (Sub(x) -> F Fill(x))"))
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(PastMonitor::Create(fac_, Parse_("forall x . Sub(x)"))
                  .status()
                  .IsNotSupported());  // no G
  EXPECT_TRUE(
      PastMonitor::Create(fac_, Parse_("G Sub(x)")).status().IsInvalidArgument());
  EXPECT_TRUE(
      PastMonitor::Create(fac_, Parse_("forall x . G (Fill(x) -> O Sub(x))")).ok());
}

TEST_F(PastMonitorTest, FillRequiresPriorSubmission) {
  // G (Fill(x) -> O Sub(x)): every fill was preceded (or accompanied) by a
  // submission.
  auto m = *PastMonitor::Create(fac_, Parse_("forall x . G (Fill(x) -> O Sub(x))"));
  auto v0 = m->ApplyTransaction(Txn({1}, {}));
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(v0->satisfied);
  auto v1 = m->ApplyTransaction(Txn({}, {1}));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->satisfied);
  auto v2 = m->ApplyTransaction(Txn({}, {2}));  // 2 was never submitted
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->satisfied);
  EXPECT_EQ(v2->first_violation, std::optional<size_t>(2));
  // Violations of G-constraints are permanent; first_violation sticks.
  auto v3 = m->ApplyTransaction(Txn({2}, {}, {}, {2}));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->first_violation, std::optional<size_t>(2));
}

TEST_F(PastMonitorTest, SinceSemantics) {
  // G (Fill(x) -> (!Sub(x)) since Sub(x)) is awkward; use a cleaner one:
  // G (Fill(x) -> Y O Sub(x)): fills must come strictly after submission.
  auto m =
      *PastMonitor::Create(fac_, Parse_("forall x . G (Fill(x) -> Y O Sub(x))"));
  auto v0 = m->ApplyTransaction(Txn({1}, {1}));  // same-instant fill: violation
  ASSERT_TRUE(v0.ok());
  EXPECT_FALSE(v0->satisfied);

  auto m2 =
      *PastMonitor::Create(fac_, Parse_("forall x . G (Fill(x) -> Y O Sub(x))"));
  ASSERT_TRUE(m2->ApplyTransaction(Txn({1}, {})).ok());
  auto v1 = m2->ApplyTransaction(Txn({}, {1}));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->satisfied);
}

TEST_F(PastMonitorTest, SubmitOncePastFormulation) {
  // The submit-once constraint in past form: G (Sub(x) -> !(Y O Sub(x))).
  auto m = *PastMonitor::Create(
      fac_, Parse_("forall x . G (Sub(x) -> !(Y O Sub(x)))"));
  ASSERT_TRUE(m->ApplyTransaction(Txn({7}, {})).ok());
  auto v1 = m->ApplyTransaction(Txn({}, {}, {7}));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->satisfied);
  auto v2 = m->ApplyTransaction(Txn({7}, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->satisfied);
  EXPECT_EQ(v2->first_violation, std::optional<size_t>(2));
}

TEST_F(PastMonitorTest, FreshElementsCanonicalizeCorrectly) {
  // G (Sub(x) -> !(Y O Fill(x))): submissions must not follow fills. Element 9
  // appears for the first time at t=2 as a submission; its past must read
  // "never filled", via the fresh-element stand-in canonicalization.
  auto m2 = *PastMonitor::Create(
      fac_, Parse_("forall x . G (Sub(x) -> !(Y O Fill(x)))"));
  ASSERT_TRUE(m2->ApplyTransaction(Txn({1}, {})).ok());
  // Retract Sub(1) while filling it (states copy forward otherwise).
  ASSERT_TRUE(m2->ApplyTransaction(Txn({}, {1}, {1})).ok());
  auto v = m2->ApplyTransaction(Txn({9}, {}));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->satisfied);  // 9 was never filled before
  // But submitting 1 again (it was filled at t=1) violates.
  auto v2 = m2->ApplyTransaction(Txn({1}, {}, {}, {1}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->satisfied);
}

TEST_F(PastMonitorTest, InternalQuantifiersAllowed) {
  // The past baseline handles internal quantification (unlike the universal
  // checker): G ((exists x . Fill(x)) -> (exists y . Sub(y))).
  auto m = *PastMonitor::Create(
      fac_, Parse_("G ((exists x . Fill(x)) -> (exists y . O Sub(y)))"));
  ASSERT_TRUE(m->ApplyTransaction(Txn({}, {})).ok());
  EXPECT_TRUE(m->last_verdict().satisfied);
  auto v1 = m->ApplyTransaction(Txn({}, {5}));
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(v1->satisfied);  // a fill with no submission ever
}

TEST_F(PastMonitorTest, AgreesWithDirectEvaluatorOnRandomStreams) {
  std::vector<std::string> constraints = {
      "forall x . G (Fill(x) -> O Sub(x))",
      "forall x . G (Sub(x) -> !(Y O Sub(x)))",
      "forall x . G ((Sub(x) since Fill(x)) -> Sub(x))",
      "forall x y . G ((Fill(x) & Fill(y)) -> x = y | O (Sub(x) & Sub(y)))",
  };
  for (const std::string& text : constraints) {
    fotl::Formula constraint = Parse_(text);
    std::vector<fotl::VarId> external;
    fotl::Formula body = nullptr;
    fotl::StripUniversalPrefix(constraint, &external, &body);
    fotl::Formula matrix = body->child(0);

    for (int seed = 0; seed < 8; ++seed) {
      std::mt19937 rng(seed * 97 + 13);
      auto m = PastMonitor::Create(fac_, constraint);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      History reference = *History::Create(vocab_);
      for (int step = 0; step < 7; ++step) {
        std::vector<Value> subs, fills;
        if (rng() % 2) subs.push_back(1 + rng() % 3);
        if (rng() % 2) fills.push_back(1 + rng() % 3);
        Transaction txn = Txn(subs, fills);
        auto verdict = (*m)->ApplyTransaction(txn);
        ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
        ASSERT_TRUE(ApplyTransaction(&reference, txn).ok());

        // Direct evaluation of the matrix at the newest instant, over the
        // relevant set plus stand-ins.
        std::vector<Value> domain = reference.RelevantSet();
        size_t fresh = external.size() + fotl::CountDistinctBoundVars(matrix) + 1;
        for (size_t i = 0; i < fresh; ++i) domain.push_back(-1 - (Value)i);
        fotl::FiniteHistoryEvaluator ev(&reference, domain);
        bool expected = true;
        std::vector<size_t> idx(external.size(), 0);
        while (expected) {
          fotl::Valuation val;
          for (size_t i = 0; i < external.size(); ++i) {
            val[external[i]] = domain[idx[i]];
          }
          auto direct = ev.EvaluateAt(matrix, val, reference.length() - 1);
          ASSERT_TRUE(direct.ok()) << direct.status().ToString();
          if (!*direct) expected = false;
          size_t d = 0;
          while (d < external.size() && ++idx[d] == domain.size()) {
            idx[d] = 0;
            ++d;
          }
          if (d == external.size()) break;
        }
        EXPECT_EQ(verdict->satisfied, expected)
            << text << " seed " << seed << " step " << step;
      }
    }
  }
}

TEST_F(PastMonitorTest, AuxiliaryStateIsHistoryIndependent) {
  auto m = *PastMonitor::Create(
      fac_, Parse_("forall x . G (Fill(x) -> O Sub(x))"));
  // Keep touching the same two elements for many states: the auxiliary state
  // must stay flat (history-less!), even as the history grows.
  size_t size_at_5 = 0;
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(m->ApplyTransaction(Txn({1}, {2}, {}, {})).ok());
    if (t == 5) size_at_5 = m->AuxiliaryStateSize();
  }
  EXPECT_EQ(m->AuxiliaryStateSize(), size_at_5);
  EXPECT_EQ(m->history().length(), 50u);
}

}  // namespace
}  // namespace past
}  // namespace tic
