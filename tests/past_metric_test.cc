// Tests for the bounded-past (metric) operator builders and their use through
// the history-less monitor — the Past Metric FOTL extension cited in
// Section 5 for real-time constraints.

#include <gtest/gtest.h>

#include "fotl/evaluator.h"
#include "fotl/parser.h"
#include "past/metric.h"
#include "past/past_monitor.h"

namespace tic {
namespace past {
namespace {

class MetricTest : public ::testing::Test {
 protected:
  MetricTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 1);
    q_ = *v->AddPredicate("q", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    x_ = fac_->InternVar("x");
    px_ = *fac_->Atom(p_, {fotl::Term::Var(x_)});
    qx_ = *fac_->Atom(q_, {fotl::Term::Var(x_)});
  }

  // Evaluates `f` with x -> 1 at instant t of a history whose states make p(1)
  // true exactly at the instants in `p_times`.
  bool EvalAt(fotl::Formula f, std::vector<size_t> p_times, size_t len, size_t t) {
    History h = *History::Create(vocab_);
    for (size_t i = 0; i < len; ++i) {
      DatabaseState* s = h.AppendEmptyState();
      for (size_t pt : p_times) {
        if (pt == i) {
          EXPECT_TRUE(s->Insert(p_, {1}).ok());
        }
      }
    }
    fotl::FiniteHistoryEvaluator ev(&h, {1, -1});
    auto res = ev.EvaluateAt(f, {{x_, 1}}, t);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() && *res;
  }

  VocabularyPtr vocab_;
  PredicateId p_, q_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
  fotl::VarId x_ = 0;
  fotl::Formula px_ = nullptr;
  fotl::Formula qx_ = nullptr;
};

TEST_F(MetricTest, OnceWithinWindow) {
  fotl::Formula within2 = OnceWithin(fac_.get(), 2, px_);
  // p(1) at instant 3; window of 2 looking back from t.
  EXPECT_FALSE(EvalAt(within2, {3}, 8, 2));
  EXPECT_TRUE(EvalAt(within2, {3}, 8, 3));
  EXPECT_TRUE(EvalAt(within2, {3}, 8, 4));
  EXPECT_TRUE(EvalAt(within2, {3}, 8, 5));
  EXPECT_FALSE(EvalAt(within2, {3}, 8, 6));  // outside the window
}

TEST_F(MetricTest, OnceWithinZeroIsNow) {
  fotl::Formula now = OnceWithin(fac_.get(), 0, px_);
  EXPECT_EQ(now, px_);
}

TEST_F(MetricTest, HistoricallyWithinWindow) {
  fotl::Formula hold2 = HistoricallyWithin(fac_.get(), 2, px_);
  // p(1) at instants 2,3,4 only.
  EXPECT_TRUE(EvalAt(hold2, {2, 3, 4}, 8, 4));   // 2,3,4 all p
  EXPECT_FALSE(EvalAt(hold2, {2, 3, 4}, 8, 5));  // 5 itself fails
  EXPECT_FALSE(EvalAt(hold2, {2, 3, 4}, 8, 3));  // 1 fails within window? 1,2,3: 1 no
}

TEST_F(MetricTest, HistoricallyWithinClipsAtOrigin) {
  // Window larger than the history so far: instants before 0 count as held.
  fotl::Formula hold3 = HistoricallyWithin(fac_.get(), 3, px_);
  EXPECT_TRUE(EvalAt(hold3, {0, 1}, 8, 1));   // only instants 0,1 exist
  EXPECT_FALSE(EvalAt(hold3, {1}, 8, 1));     // 0 fails
}

TEST_F(MetricTest, PrevK) {
  fotl::Formula back3 = PrevK(fac_.get(), 3, px_);
  EXPECT_TRUE(EvalAt(back3, {2}, 8, 5));
  EXPECT_FALSE(EvalAt(back3, {2}, 8, 4));
  // Falls off the history start.
  EXPECT_FALSE(EvalAt(back3, {2}, 8, 2));
}

TEST_F(MetricTest, WeakPrevAtOrigin) {
  fotl::Formula wp = WeakPrev(fac_.get(), px_);
  EXPECT_TRUE(EvalAt(wp, {}, 4, 0));    // vacuously true at instant 0
  EXPECT_FALSE(EvalAt(wp, {}, 4, 1));
  EXPECT_TRUE(EvalAt(wp, {0}, 4, 1));
}

TEST_F(MetricTest, MetricConstraintThroughMonitor) {
  // Real-time policy: every q must have been preceded by a p within the last
  // 2 instants: forall x . G (q(x) -> O_{<=2} p(x)).
  fotl::Formula body = fac_->Implies(qx_, OnceWithin(fac_.get(), 2, px_));
  fotl::Formula constraint = fac_->Forall(x_, fac_->Always(body));
  auto monitor = PastMonitor::Create(fac_, constraint);
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();

  auto step = [&](bool p, bool q) {
    Transaction t;
    t.push_back(p ? UpdateOp::Insert(p_, {1}) : UpdateOp::Delete(p_, {1}));
    t.push_back(q ? UpdateOp::Insert(q_, {1}) : UpdateOp::Delete(q_, {1}));
    auto v = (*monitor)->ApplyTransaction(t);
    EXPECT_TRUE(v.ok());
    return v->satisfied;
  };
  EXPECT_TRUE(step(true, false));    // t0: p
  EXPECT_TRUE(step(false, true));    // t1: q, p was 1 ago -> ok
  EXPECT_TRUE(step(false, true));    // t2: q, p was 2 ago -> ok
  EXPECT_FALSE(step(false, true));   // t3: q, p was 3 ago -> VIOLATION
}

}  // namespace
}  // namespace past
}  // namespace tic
