// A battery of classical propositional-TL identities decided by the tableau's
// CheckEquivalent — a strong cross-check of the NNF transformation, the
// expansion rules, and the acceptance condition, and a regression net for the
// solver. Each identity is a parameterized case (TEST_P).

#include <gtest/gtest.h>

#include <string>

#include "ptl/parser.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {
namespace {

struct IdentityCase {
  const char* lhs;
  const char* rhs;
  bool equivalent;  // expected verdict
};

std::ostream& operator<<(std::ostream& os, const IdentityCase& c) {
  return os << "'" << c.lhs << "' " << (c.equivalent ? "==" : "!=") << " '" << c.rhs
            << "'";
}

class IdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(IdentityTest, EquivalenceVerdict) {
  const IdentityCase& c = GetParam();
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  auto lhs = Parse(&fac, c.lhs);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  auto rhs = Parse(&fac, c.rhs);
  ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();
  auto eq = CheckEquivalent(&fac, *lhs, *rhs);
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  EXPECT_EQ(*eq, c.equivalent) << c;
}

INSTANTIATE_TEST_SUITE_P(
    ExpansionLaws, IdentityTest,
    ::testing::Values(
        IdentityCase{"p U q", "q | (p & X (p U q))", true},
        IdentityCase{"p R q", "q & (p | X (p R q))", true},
        IdentityCase{"F p", "p | X F p", true},
        IdentityCase{"G p", "p & X G p", true}));

INSTANTIATE_TEST_SUITE_P(
    Dualities, IdentityTest,
    ::testing::Values(
        IdentityCase{"!(p U q)", "!p R !q", true},
        IdentityCase{"!(p R q)", "!p U !q", true},
        IdentityCase{"!F p", "G !p", true},
        IdentityCase{"!G p", "F !p", true},
        IdentityCase{"!X p", "X !p", true}));

INSTANTIATE_TEST_SUITE_P(
    Idempotence, IdentityTest,
    ::testing::Values(
        IdentityCase{"F F p", "F p", true},
        IdentityCase{"G G p", "G p", true},
        IdentityCase{"p U (p U q)", "p U q", true},
        IdentityCase{"(p U q) U q", "p U q", true},
        IdentityCase{"G F G F p", "G F p", true},
        IdentityCase{"F G F p", "G F p", true}));

INSTANTIATE_TEST_SUITE_P(
    Distribution, IdentityTest,
    ::testing::Values(
        IdentityCase{"X (p & q)", "X p & X q", true},
        IdentityCase{"X (p | q)", "X p | X q", true},
        IdentityCase{"X (p U q)", "X p U X q", true},
        IdentityCase{"F (p | q)", "F p | F q", true},
        IdentityCase{"G (p & q)", "G p & G q", true},
        IdentityCase{"(p & q) U r", "(p U r) & (q U r)", true},
        IdentityCase{"p U (q | r)", "(p U q) | (p U r)", true},
        // The false distributions.
        IdentityCase{"F (p & q)", "F p & F q", false},
        IdentityCase{"G (p | q)", "G p | G q", false},
        IdentityCase{"(p | q) U r", "(p U r) | (q U r)", false},
        IdentityCase{"p U (q & r)", "(p U q) & (p U r)", false}));

INSTANTIATE_TEST_SUITE_P(
    Absorption, IdentityTest,
    ::testing::Values(
        IdentityCase{"p & (p | q)", "p", true},
        IdentityCase{"p | (p & q)", "p", true},
        IdentityCase{"F G F p", "G F p", true},
        IdentityCase{"G F G p", "F G p", true},
        IdentityCase{"p U (p U q)", "(p U q) U q", true}));

INSTANTIATE_TEST_SUITE_P(
    StrengthOrdering, IdentityTest,
    ::testing::Values(
        // G p implies p but not conversely, etc. — inequivalences.
        IdentityCase{"G p", "p", false},
        IdentityCase{"F p", "p", false},
        IdentityCase{"p U q", "F q", false},
        IdentityCase{"p R q", "G q", false},
        IdentityCase{"X p", "p", false},
        IdentityCase{"G F p", "F G p", false}));

INSTANTIATE_TEST_SUITE_P(
    Constants, IdentityTest,
    ::testing::Values(
        IdentityCase{"true U p", "F p", true},
        IdentityCase{"false R p", "G p", true},
        IdentityCase{"false U p", "p", true},
        IdentityCase{"true R p", "p", true},
        IdentityCase{"p U false", "false", true},
        IdentityCase{"p R true", "true", true},
        IdentityCase{"G true", "true", true},
        IdentityCase{"F false", "false", true}));

// Implication-level facts decided through validity.
struct ValidityCase {
  const char* text;
  bool valid;
};

class ValidityTest : public ::testing::TestWithParam<ValidityCase> {};

TEST_P(ValidityTest, Verdict) {
  const ValidityCase& c = GetParam();
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  auto f = Parse(&fac, c.text);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto v = CheckValid(&fac, *f);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, c.valid) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Theorems, ValidityTest,
    ::testing::Values(
        ValidityCase{"G p -> p", true},
        ValidityCase{"p -> F p", true},
        ValidityCase{"G p -> F p", true},
        ValidityCase{"(p U q) -> F q", true},
        ValidityCase{"G p -> (q R p)", true},
        ValidityCase{"G (p -> q) -> (G p -> G q)", true},  // K axiom for G
        ValidityCase{"G (p -> q) -> (F p -> F q)", true},
        ValidityCase{"G (p -> X p) -> (p -> G p)", true},  // induction
        ValidityCase{"X (p -> q) -> (X p -> X q)", true},
        ValidityCase{"F G p -> G F p", true},
        // Non-theorems.
        ValidityCase{"F p -> p", false},
        ValidityCase{"G F p -> F G p", false},
        ValidityCase{"F q -> (p U q)", false},
        ValidityCase{"(p -> G p)", false},
        ValidityCase{"F p & F q -> F (p & q)", false}));

}  // namespace
}  // namespace ptl
}  // namespace tic
