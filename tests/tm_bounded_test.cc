// Tests for the Section 6 bounded-space construction: a Turing machine
// encoded as a *universal safety sentence over an ordinary vocabulary*
// (Succ/First/Last as database relations held rigid), decided by the
// Theorem 4.2 checker. Potential satisfaction of the single-state history
// (D0) == the machine runs forever within the region — so the checker
// effectively simulates the machine, which is the paper's argument for why
// |R_D| cannot leave the exponent.

#include <gtest/gtest.h>

#include "checker/extension.h"
#include "fotl/classify.h"
#include "fotl/evaluator.h"
#include "tm/formulas.h"

namespace tic {
namespace tm {
namespace {

checker::CheckResult Check(const BoundedTmInstance& inst) {
  auto res = checker::CheckPotentialSatisfaction(*inst.factory, inst.phi,
                                                 inst.history);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? *res : checker::CheckResult{};
}

TEST(BoundedTmTest, InstanceShape) {
  TuringMachine shuttle = *MakeShuttleMachine();
  auto inst = BuildBoundedInstance(shuttle, "0", 5);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  fotl::Classification c = fotl::Classify(inst->phi);
  EXPECT_TRUE(c.universal);  // the Theorem 4.2 fragment
  EXPECT_TRUE(c.closed);
  EXPECT_EQ(c.external_universals.size(), 3u);
  EXPECT_FALSE(inst->vocab->HasBuiltins());  // ordinary vocabulary!
  EXPECT_EQ(inst->history.length(), 1u);
  // D0 carries the Succ chain and the region markers.
  PredicateId succ = *inst->vocab->FindPredicate("Succ");
  PredicateId first = *inst->vocab->FindPredicate("First");
  PredicateId last = *inst->vocab->FindPredicate("Last");
  EXPECT_TRUE(inst->history.state(0).Holds(succ, {0, 1}));
  EXPECT_TRUE(inst->history.state(0).Holds(succ, {3, 4}));
  EXPECT_TRUE(inst->history.state(0).Holds(first, {0}));
  EXPECT_TRUE(inst->history.state(0).Holds(last, {4}));
}

TEST(BoundedTmTest, RegionMustCoverTheInput) {
  TuringMachine shuttle = *MakeShuttleMachine();
  EXPECT_TRUE(BuildBoundedInstance(shuttle, "0101", 4).status().IsInvalidArgument());
}

TEST(BoundedTmTest, ShuttleWithinRegionIsPotentiallySatisfied) {
  // The shuttle on "0" cycles within word positions 0..2: it runs forever
  // inside a 5-cell region, so (D0) extends — and the checker's witness IS
  // the computation (verified by replaying phi on it).
  TuringMachine shuttle = *MakeShuttleMachine();
  auto inst = BuildBoundedInstance(shuttle, "0", 5);
  ASSERT_TRUE(inst.ok());
  checker::CheckResult r = Check(*inst);
  EXPECT_TRUE(r.potentially_satisfied);
  ASSERT_TRUE(r.witness.has_value());

  // Independent audit: the synthesized evolution satisfies phi.
  auto holds = fotl::EvaluateFuture(*r.witness, inst->phi);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(*holds);

  // The witness carries exactly one state symbol per instant (the forced,
  // deterministic computation), and the head stays off the Last cell.
  std::vector<PredicateId> state_preds;
  for (const char* name : {"P_q0", "P_qR", "P_qL"}) {
    state_preds.push_back(*inst->vocab->FindPredicate(name));
  }
  for (size_t t = 0; t < r.witness->prefix_length() + r.witness->loop_length();
       ++t) {
    size_t symbols = 0;
    for (PredicateId p : state_preds) {
      symbols += r.witness->StateAt(t).relation(p).size();
      for (const Tuple& tup : r.witness->StateAt(t).relation(p)) {
        EXPECT_LT(tup[0], 4) << "head reached the boundary at t=" << t;
      }
    }
    EXPECT_EQ(symbols, 1u) << "t=" << t;
  }
}

TEST(BoundedTmTest, HaltingMachineIsRejected) {
  TuringMachine halting = *MakeImmediateHaltMachine();
  auto inst = BuildBoundedInstance(halting, "0", 5);
  ASSERT_TRUE(inst.ok());
  checker::CheckResult r = Check(*inst);
  EXPECT_FALSE(r.potentially_satisfied);  // the halt rule forbids extension
}

TEST(BoundedTmTest, RightWalkerHitsTheBoundary) {
  TuringMachine walker = *MakeRightWalkerMachine();
  auto inst = BuildBoundedInstance(walker, "0", 5);
  ASSERT_TRUE(inst.ok());
  checker::CheckResult r = Check(*inst);
  // The walker reaches the Last cell after finitely many steps; the boundary
  // rule then kills every extension.
  EXPECT_FALSE(r.potentially_satisfied);
}

TEST(BoundedTmTest, CounterOverflowsSmallRegionButFitsNone) {
  // The binary counter's tape grows without bound: inside ANY finite region it
  // eventually reaches the boundary, so the instance is never potentially
  // satisfiable — but the checker has to simulate ~2^bits steps to see it
  // (the Section 6 cost argument, in miniature).
  TuringMachine counter = *MakeBinaryCounterMachine();
  auto inst = BuildBoundedInstance(counter, "", 5);
  ASSERT_TRUE(inst.ok());
  checker::CheckResult r = Check(*inst);
  EXPECT_FALSE(r.potentially_satisfied);
}

}  // namespace
}  // namespace tm
}  // namespace tic
