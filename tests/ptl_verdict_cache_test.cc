// Tests for the renaming-invariant canonical form and the LRU tableau verdict
// cache: key sharing across letter renamings, witness remapping on hits, LRU
// bookkeeping, and the CheckSat integration.

#include "ptl/verdict_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "ptl/formula.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

class VerdictCacheTest : public ::testing::Test {
 protected:
  VerdictCacheTest()
      : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = vocab_->Intern("p");
    q_ = vocab_->Intern("q");
    r_ = vocab_->Intern("r");
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  PropId p_, q_, r_;
};

TEST_F(VerdictCacheTest, RenamedFormulasShareOneKey) {
  // G(p -> X q) and G(q -> X r) are injective letter-renamings of each other.
  Formula a = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  Formula b = fac_.Always(fac_.Implies(fac_.Atom(q_), fac_.Next(fac_.Atom(r_))));
  auto ca = Canonicalize(a);
  auto cb = Canonicalize(b);
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(ca->key, cb->key);
  // The letter maps differ: that's what reconstructs concrete witnesses.
  EXPECT_EQ(ca->letters, (std::vector<PropId>{p_, q_}));
  EXPECT_EQ(cb->letters, (std::vector<PropId>{q_, r_}));
}

TEST_F(VerdictCacheTest, NonRenamingsGetDistinctKeys) {
  // p & q uses two letters; p & p only one — not an injective renaming.
  Formula two = fac_.And(fac_.Atom(p_), fac_.Atom(q_));
  Formula one = fac_.And(fac_.Atom(p_), fac_.Atom(p_));  // folds to p
  auto c2 = Canonicalize(two);
  auto c1 = Canonicalize(one);
  ASSERT_TRUE(c2.has_value());
  ASSERT_TRUE(c1.has_value());
  EXPECT_NE(c2->key, c1->key);

  Formula until = fac_.Until(fac_.Atom(p_), fac_.Atom(q_));
  Formula release = fac_.Release(fac_.Atom(p_), fac_.Atom(q_));
  EXPECT_NE(Canonicalize(until)->key, Canonicalize(release)->key);
}

TEST_F(VerdictCacheTest, SharedSubtermsKeepKeysLinear) {
  // A tower of And(x, x) has 2^k tree unfolding but k distinct DAG nodes;
  // back-references must keep the key small instead of bailing out.
  Formula x = fac_.Atom(p_);
  Formula y = fac_.Atom(q_);
  for (int i = 0; i < 40; ++i) {
    x = fac_.And(x, fac_.Next(x));
    y = fac_.And(y, fac_.Next(y));
  }
  auto cx = Canonicalize(x);
  ASSERT_TRUE(cx.has_value());
  EXPECT_LT(cx->key.size(), 4096u);
  EXPECT_EQ(cx->key, Canonicalize(y)->key);  // still renaming-invariant
}

TEST_F(VerdictCacheTest, HitReturnsVerdictAndRemappedWitness) {
  VerdictCache cache(16);
  // Satisfiable: p & X G !p, checked for p, then looked up for q.
  Formula fp = fac_.And(fac_.Atom(p_),
                        fac_.Next(fac_.Always(fac_.Not(fac_.Atom(p_)))));
  Formula fq = fac_.And(fac_.Atom(q_),
                        fac_.Next(fac_.Always(fac_.Not(fac_.Atom(q_)))));
  auto cp = Canonicalize(fp);
  auto cq = Canonicalize(fq);
  ASSERT_TRUE(cp.has_value());
  ASSERT_TRUE(cq.has_value());
  ASSERT_EQ(cp->key, cq->key);

  TableauOptions opts;
  auto sat = CheckSat(&fac_, fp, opts);
  ASSERT_TRUE(sat.ok());
  ASSERT_TRUE(sat->satisfiable);
  ASSERT_TRUE(sat->witness.has_value());
  cache.Insert(*cp, true, sat->witness);

  bool satisfiable = false;
  std::optional<UltimatelyPeriodicWord> witness;
  ASSERT_TRUE(cache.Lookup(*cq, &satisfiable, &witness));
  EXPECT_TRUE(satisfiable);
  ASSERT_TRUE(witness.has_value());
  // The remapped witness must be a genuine model of the q-version.
  auto holds = Evaluate(*witness, fq, 0);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(*holds);

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(VerdictCacheTest, LruEvictsOldestAndCounts) {
  VerdictCache cache(2);
  Formula fs[3] = {
      fac_.Atom(p_),
      fac_.And(fac_.Atom(p_), fac_.Atom(q_)),
      fac_.Until(fac_.Atom(p_), fac_.Atom(q_)),
  };
  CanonicalFormula cf[3];
  for (int i = 0; i < 3; ++i) cf[i] = *Canonicalize(fs[i]);
  cache.Insert(cf[0], true, std::nullopt);
  cache.Insert(cf[1], true, std::nullopt);
  cache.Insert(cf[2], true, std::nullopt);  // evicts cf[0]
  bool sat = false;
  EXPECT_FALSE(cache.Lookup(cf[0], &sat, nullptr));
  EXPECT_TRUE(cache.Lookup(cf[1], &sat, nullptr));
  EXPECT_TRUE(cache.Lookup(cf[2], &sat, nullptr));
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST_F(VerdictCacheTest, CheckSatUsesInjectedCache) {
  TableauOptions opts;
  opts.verdict_cache = std::make_shared<VerdictCache>(64);

  Formula fp = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  auto first = CheckSat(&fac_, fp, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.cache_hits, 0u);
  EXPECT_EQ(first->stats.cache_misses, 1u);

  // Letter-renamed variant: same canonical key, so a hit with equal verdict.
  Formula fq = fac_.Always(fac_.Implies(fac_.Atom(q_), fac_.Next(fac_.Atom(r_))));
  auto second = CheckSat(&fac_, fq, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache_hits, 1u);
  EXPECT_EQ(second->satisfiable, first->satisfiable);
  if (second->witness.has_value()) {
    auto holds = Evaluate(*second->witness, fq, 0);
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds);
  }

  // Unsatisfiable verdicts are cached too.
  Formula contradiction =
      fac_.And(fac_.Atom(p_), fac_.Not(fac_.Atom(p_)));
  auto u1 = CheckSat(&fac_, contradiction, opts);
  ASSERT_TRUE(u1.ok());
  EXPECT_FALSE(u1->satisfiable);
  Formula renamed =
      fac_.And(fac_.Atom(r_), fac_.Not(fac_.Atom(r_)));
  auto u2 = CheckSat(&fac_, renamed, opts);
  ASSERT_TRUE(u2.ok());
  EXPECT_FALSE(u2->satisfiable);
}

}  // namespace
}  // namespace ptl
}  // namespace tic
