// Tests for temporal Condition-Action triggers via the Section 2 duality:
// a trigger fires for theta iff !C(theta) is not potentially satisfied.

#include <gtest/gtest.h>

#include "checker/trigger.h"
#include "fotl/parser.h"

namespace tic {
namespace checker {
namespace {

class TriggerTest : public ::testing::Test {
 protected:
  TriggerTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  fotl::Formula Parse_(const std::string& s) { return *fotl::Parse(fac_.get(), s); }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills,
                  std::vector<Value> unsubs = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    for (Value v : unsubs) t.push_back(UpdateOp::Delete(sub_, {v}));
    return t;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_F(TriggerTest, ValidatesConditionFragment) {
  auto mgr = *TriggerManager::Create(fac_);
  // C quantifier-free with a free parameter: fine.
  EXPECT_TRUE(mgr->AddTrigger("dup", Parse_("Sub(x) & Y O Sub(x)")).IsNotSupported())
      << "past operators are outside the biquantified fragment";
  EXPECT_TRUE(mgr->AddTrigger("dup", Parse_("Sub(x) & F Sub(x)")).ok());
  // Existential prefix dualizes to a universal check: fine.
  EXPECT_TRUE(mgr->AddTrigger("any", Parse_("exists x . Sub(x) & F Fill(x)")).ok());
  // forall inside a trigger condition dualizes to an existential check: not
  // supported.
  EXPECT_TRUE(
      mgr->AddTrigger("bad", Parse_("forall x . Sub(x)")).IsNotSupported());
  // Internal quantifier under a temporal operator: undecidable fragment.
  EXPECT_TRUE(
      mgr->AddTrigger("bad2", Parse_("exists x . F (exists y . Sub(y) & Fill(x))"))
          .IsNotSupported());
}

TEST_F(TriggerTest, FiresExactlyWhenConditionIsUnavoidable) {
  auto mgr = *TriggerManager::Create(fac_);
  // Condition: "order x was submitted twice (in different states)". The
  // existential reading: Sub(x) held, then later Sub(x) held again.
  // C(x) = F (Sub(x) & X F Sub(x)). !C is universal.
  ASSERT_TRUE(mgr->AddTrigger("resubmitted", Parse_("F (Sub(x) & X F Sub(x))")).ok());

  auto f0 = mgr->OnTransaction(Txn({7}, {}));
  ASSERT_TRUE(f0.ok()) << f0.status().ToString();
  EXPECT_TRUE(f0->empty());  // a second submission is avoidable so far

  // Transactions copy the previous state, so withdraw Sub(7) explicitly.
  auto f1 = mgr->OnTransaction(Txn({}, {}, {7}));
  ASSERT_TRUE(f1.ok());
  EXPECT_TRUE(f1->empty());

  auto f2 = mgr->OnTransaction(Txn({7}, {}));
  ASSERT_TRUE(f2.ok());
  // Now every extension contains the double submission: fires for theta x=7.
  ASSERT_EQ(f2->size(), 1u);
  EXPECT_EQ((*f2)[0].trigger, "resubmitted");
  EXPECT_EQ((*f2)[0].time, 2u);
  fotl::VarId x = fac_->InternVar("x");
  EXPECT_EQ((*f2)[0].substitution.at(x), 7);
}

TEST_F(TriggerTest, ParameterlessExistentialTrigger) {
  auto mgr = *TriggerManager::Create(fac_);
  // "Some order was submitted and later filled" — closed condition; with the
  // history ending in a state where both happened, it fires with theta = {}.
  ASSERT_TRUE(
      mgr->AddTrigger("served", Parse_("exists x . Sub(x) & F Fill(x)")).ok());
  auto f0 = mgr->OnTransaction(Txn({3}, {}));
  ASSERT_TRUE(f0.ok());
  EXPECT_TRUE(f0->empty());  // Fill(3) could still never happen
  auto f1 = mgr->OnTransaction(Txn({}, {3}));
  ASSERT_TRUE(f1.ok());
  ASSERT_EQ(f1->size(), 1u);
  EXPECT_TRUE((*f1)[0].substitution.empty());
}

TEST_F(TriggerTest, ActionsAreInvoked) {
  auto mgr = *TriggerManager::Create(fac_);
  std::vector<std::string> log;
  ASSERT_TRUE(mgr->AddTrigger("now", Parse_("Sub(x)"),
                              [&](const TriggerFiring& f) {
                                log.push_back(f.trigger + "@" +
                                              std::to_string(f.time));
                              })
                  .ok());
  auto f = mgr->OnTransaction(Txn({1, 2}, {}));
  ASSERT_TRUE(f.ok());
  // Sub(x) is true *now* for x in {1,2}: !Sub(x) is not potentially satisfied
  // (the current state already refutes it) -> fires per substitution.
  EXPECT_EQ(f->size(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST_F(TriggerTest, SubstitutionsRangeOverRelevantSet) {
  auto mgr = *TriggerManager::Create(fac_);
  ASSERT_TRUE(mgr->AddTrigger("notsub", Parse_("!Sub(x)")).ok());
  auto f = mgr->OnTransaction(Txn({1}, {2}));
  ASSERT_TRUE(f.ok());
  // Relevant = {1, 2}; !Sub(x) holds now (unavoidably) only for x=2.
  ASSERT_EQ(f->size(), 1u);
  fotl::VarId x = fac_->InternVar("x");
  EXPECT_EQ((*f)[0].substitution.at(x), 2);
}

TEST_F(TriggerTest, MultipleTriggersEvaluateIndependently) {
  auto mgr = *TriggerManager::Create(fac_);
  ASSERT_TRUE(mgr->AddTrigger("a", Parse_("Sub(x)")).ok());
  ASSERT_TRUE(mgr->AddTrigger("b", Parse_("Fill(x)")).ok());
  auto f = mgr->OnTransaction(Txn({1}, {1}));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 2u);
}

TEST_F(TriggerTest, EvaluateWithoutTransaction) {
  auto mgr = *TriggerManager::Create(fac_);
  ASSERT_TRUE(mgr->AddTrigger("now", Parse_("Sub(x)")).ok());
  auto none = mgr->EvaluateTriggers();
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());  // empty history: nothing fires
  ASSERT_TRUE(mgr->OnTransaction(Txn({5}, {})).ok());
  auto again = mgr->EvaluateTriggers();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 1u);
}

}  // namespace
}  // namespace checker
}  // namespace tic
