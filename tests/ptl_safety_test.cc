// Tests for the safety analysis: Sistla-style syntactic recognition plus the
// bounded semantic oracle, demonstrating the Section 2 safety/liveness
// dichotomy at the propositional level.

#include <gtest/gtest.h>

#include "ptl/safety.h"

namespace tic {
namespace ptl {
namespace {

class SafetyTest : public ::testing::Test {
 protected:
  SafetyTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_id_ = vocab_->Intern("p");
    q_id_ = vocab_->Intern("q");
    p_ = fac_.Atom(p_id_);
    q_ = fac_.Atom(q_id_);
  }
  PropVocabularyPtr vocab_;
  Factory fac_;
  PropId p_id_, q_id_;
  Formula p_, q_;
};

TEST_F(SafetyTest, SyntacticallySafeShapes) {
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, p_));
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, fac_.Always(p_)));
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, fac_.Next(fac_.Not(p_))));
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, fac_.Release(p_, q_)));
  // G (p -> X G !p): the submit-once skeleton.
  EXPECT_TRUE(IsSyntacticallySafe(
      &fac_, fac_.Always(fac_.Implies(p_, fac_.Next(fac_.Always(fac_.Not(p_)))))));
}

TEST_F(SafetyTest, EventualitiesAreNotSyntacticallySafe) {
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, fac_.Eventually(p_)));
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, fac_.Until(p_, q_)));
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, fac_.Always(fac_.Eventually(p_))));
  // Negation flips: !F p == G !p is safe.
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, fac_.Not(fac_.Eventually(p_))));
  // !(p R q) == !p U !q is not.
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, fac_.Not(fac_.Release(p_, q_))));
}

TEST_F(SafetyTest, NegatedUntilInsideAntecedentIsFine) {
  // G ((p U q) -> r) in NNF: G ((!p R !q) | r): no Until left.
  Formula r = fac_.Atom(vocab_->Intern("r"));
  Formula f = fac_.Always(fac_.Implies(fac_.Until(p_, q_), r));
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, f));
}

TEST_F(SafetyTest, CoSafeShapes) {
  EXPECT_TRUE(IsSyntacticallyCoSafe(&fac_, fac_.Eventually(p_)));
  EXPECT_TRUE(IsSyntacticallyCoSafe(&fac_, fac_.Until(p_, q_)));
  EXPECT_FALSE(IsSyntacticallyCoSafe(&fac_, fac_.Always(p_)));
  EXPECT_FALSE(IsSyntacticallyCoSafe(&fac_, fac_.Not(fac_.Eventually(p_))));
  // Finite-horizon facts are both safe and co-safe.
  Formula finite = fac_.And(p_, fac_.Next(q_));
  EXPECT_TRUE(IsSyntacticallySafe(&fac_, finite));
  EXPECT_TRUE(IsSyntacticallyCoSafe(&fac_, finite));
}

TEST_F(SafetyTest, BoundedOracleConfirmsSafety) {
  std::vector<PropId> props = {p_id_};
  // G p is a safety property.
  auto safe = BoundedSafetyCheck(&fac_, fac_.Always(p_), props, 2);
  ASSERT_TRUE(safe.ok()) << safe.status().ToString();
  EXPECT_TRUE(*safe);
  // p & X !p too (finite horizon).
  auto safe2 =
      BoundedSafetyCheck(&fac_, fac_.And(p_, fac_.Next(fac_.Not(p_))), props, 2);
  ASSERT_TRUE(safe2.ok());
  EXPECT_TRUE(*safe2);
}

TEST_F(SafetyTest, BoundedOracleRefutesLiveness) {
  std::vector<PropId> props = {p_id_};
  // F p is a liveness property: the all-false lasso falsifies it while every
  // finite prefix is extendable.
  auto live = BoundedSafetyCheck(&fac_, fac_.Eventually(p_), props, 2);
  ASSERT_TRUE(live.ok());
  EXPECT_FALSE(*live);
  // G F p likewise.
  auto gfp =
      BoundedSafetyCheck(&fac_, fac_.Always(fac_.Eventually(p_)), props, 2);
  ASSERT_TRUE(gfp.ok());
  EXPECT_FALSE(*gfp);
}

TEST_F(SafetyTest, SyntacticTestIsSoundButIncomplete) {
  // (F p) | G true == semantically valid (G true is true), so it defines the
  // safety property "all words"... the factory folds it to true, so craft a
  // subtler case: p U q | !q-at-0 ... keep it simple: F q | G !q is
  // semantically equivalent to true? No: on any word, either q eventually
  // holds or it never does — it IS valid, hence trivially safe, yet the
  // syntactic test sees the Until and says "don't know" (returns false).
  Formula f = fac_.Or(fac_.Eventually(q_), fac_.Always(fac_.Not(q_)));
  EXPECT_FALSE(IsSyntacticallySafe(&fac_, f));  // incompleteness, documented
  auto oracle = BoundedSafetyCheck(&fac_, f, {q_id_}, 2);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(*oracle);  // semantically safe (valid)
}

TEST_F(SafetyTest, OracleRefusesLargeInputs) {
  std::vector<PropId> many = {p_id_, q_id_, vocab_->Intern("r3"),
                              vocab_->Intern("r4"), vocab_->Intern("r5")};
  EXPECT_TRUE(
      BoundedSafetyCheck(&fac_, p_, many, 2).status().IsInvalidArgument());
  EXPECT_TRUE(
      BoundedSafetyCheck(&fac_, p_, {p_id_}, 9).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ptl
}  // namespace tic
