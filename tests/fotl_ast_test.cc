// Tests for the FOTL AST factory: hash-consing, builder simplifications,
// cached metadata (size, free variables, tense flags).

#include <gtest/gtest.h>

#include "fotl/factory.h"
#include "fotl/printer.h"

namespace tic {
namespace fotl {
namespace {

class AstTest : public ::testing::Test {
 protected:
  AstTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 1);
    r_ = *v->AddPredicate("r", 2);
    c_ = *v->AddConstant("c");
    vocab_ = v;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
    x_ = fac_->InternVar("x");
    y_ = fac_->InternVar("y");
  }

  Formula P(VarId v) { return *fac_->Atom(p_, {Term::Var(v)}); }

  VocabularyPtr vocab_;
  PredicateId p_, r_;
  ConstantId c_;
  std::unique_ptr<FormulaFactory> fac_;
  VarId x_, y_;
};

TEST_F(AstTest, HashConsing) {
  EXPECT_EQ(P(x_), P(x_));
  EXPECT_NE(P(x_), P(y_));
  EXPECT_EQ(fac_->And(P(x_), P(y_)), fac_->And(P(x_), P(y_)));
  EXPECT_EQ(fac_->Until(P(x_), P(y_)), fac_->Until(P(x_), P(y_)));
  EXPECT_NE(fac_->Until(P(x_), P(y_)), fac_->Since(P(x_), P(y_)));
  EXPECT_EQ(fac_->Forall(x_, P(x_)), fac_->Forall(x_, P(x_)));
  EXPECT_NE(fac_->Forall(x_, P(x_)), fac_->Exists(x_, P(x_)));
}

TEST_F(AstTest, ConstantFolding) {
  Formula t = fac_->True();
  Formula f = fac_->False();
  EXPECT_EQ(fac_->Not(t), f);
  EXPECT_EQ(fac_->Not(fac_->Not(P(x_))), P(x_));
  EXPECT_EQ(fac_->And(t, P(x_)), P(x_));
  EXPECT_EQ(fac_->And(f, P(x_)), f);
  EXPECT_EQ(fac_->Or(f, P(x_)), P(x_));
  EXPECT_EQ(fac_->Or(t, P(x_)), t);
  EXPECT_EQ(fac_->Implies(f, P(x_)), t);
  EXPECT_EQ(fac_->Implies(P(x_), P(x_)), t);
  EXPECT_EQ(fac_->Implies(P(x_), f), fac_->Not(P(x_)));
  EXPECT_EQ(fac_->And(P(x_), P(x_)), P(x_));
  EXPECT_EQ(fac_->Next(t), t);
  EXPECT_EQ(fac_->Until(P(x_), t), t);
  EXPECT_EQ(fac_->Until(P(x_), f), f);
  EXPECT_EQ(fac_->Since(P(x_), t), t);
  EXPECT_EQ(fac_->Since(P(x_), f), f);
  // Prev True is NOT true (false at instant 0) and must not fold.
  EXPECT_EQ(fac_->Prev(t)->kind(), NodeKind::kPrev);
  EXPECT_EQ(fac_->Prev(f), f);
  EXPECT_EQ(fac_->Forall(x_, t), t);
  EXPECT_EQ(fac_->Exists(x_, f), f);
}

TEST_F(AstTest, EqualsFoldsIdenticalTerms) {
  EXPECT_EQ(fac_->Equals(Term::Var(x_), Term::Var(x_)), fac_->True());
  EXPECT_EQ(fac_->Equals(Term::Const(c_), Term::Const(c_)), fac_->True());
  EXPECT_EQ(fac_->Equals(Term::Var(x_), Term::Var(y_))->kind(), NodeKind::kEquals);
  // x = c does not fold (depends on the interpretation).
  EXPECT_EQ(fac_->Equals(Term::Var(x_), Term::Const(c_))->kind(), NodeKind::kEquals);
}

TEST_F(AstTest, AtomArityChecked) {
  EXPECT_TRUE(fac_->Atom(p_, {}).status().IsInvalidArgument());
  EXPECT_TRUE(fac_->Atom(p_, {Term::Var(x_), Term::Var(y_)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(fac_->Atom(999, {Term::Var(x_)}).status().IsOutOfRange());
}

TEST_F(AstTest, FreeVariables) {
  Formula rxy = *fac_->Atom(r_, {Term::Var(x_), Term::Var(y_)});
  EXPECT_EQ(rxy->free_vars().size(), 2u);
  Formula all_x = fac_->Forall(x_, rxy);
  EXPECT_EQ(all_x->free_vars(), std::vector<VarId>{y_});
  Formula closed = fac_->Exists(y_, all_x);
  EXPECT_TRUE(closed->is_closed());
  // Constants contribute no free variables.
  Formula pc = *fac_->Atom(p_, {Term::Const(c_)});
  EXPECT_TRUE(pc->is_closed());
}

TEST_F(AstTest, TenseFlags) {
  Formula a = P(x_);
  EXPECT_FALSE(a->has_temporal());
  EXPECT_TRUE(a->is_pure_first_order());
  Formula fut = fac_->Until(a, P(y_));
  EXPECT_TRUE(fut->has_future());
  EXPECT_FALSE(fut->has_past());
  Formula past = fac_->Since(a, P(y_));
  EXPECT_TRUE(past->has_past());
  EXPECT_FALSE(past->has_future());
  Formula mixed = fac_->And(fut, past);
  EXPECT_TRUE(mixed->has_future());
  EXPECT_TRUE(mixed->has_past());
  EXPECT_TRUE(fac_->Eventually(a)->has_future());
  EXPECT_TRUE(fac_->Once(a)->has_past());
  EXPECT_TRUE(fac_->Historically(a)->has_past());
  EXPECT_TRUE(fac_->Prev(a)->has_past());
}

TEST_F(AstTest, QuantifierFlag) {
  EXPECT_FALSE(P(x_)->has_quantifier());
  EXPECT_TRUE(fac_->Forall(x_, P(x_))->has_quantifier());
  EXPECT_TRUE(fac_->Always(fac_->Exists(x_, P(x_)))->has_quantifier());
}

TEST_F(AstTest, SizeIsTreeSize) {
  Formula a = P(x_);
  EXPECT_EQ(a->size(), 1u);
  Formula f = fac_->Until(a, fac_->Not(P(y_)));
  EXPECT_EQ(f->size(), 4u);  // Until + p(x) + Not + p(y)
  // Sharing does not shrink the tree-size measure.
  Formula g = fac_->And(f, fac_->Or(f, a));
  EXPECT_EQ(g->size(), 1 + f->size() + 1 + f->size() + 1);
}

TEST_F(AstTest, AndAllOrAll) {
  EXPECT_EQ(fac_->AndAll({}), fac_->True());
  EXPECT_EQ(fac_->OrAll({}), fac_->False());
  EXPECT_EQ(fac_->AndAll({P(x_)}), P(x_));
  Formula both = fac_->AndAll({P(x_), P(y_)});
  EXPECT_EQ(both->kind(), NodeKind::kAnd);
}

TEST_F(AstTest, VariableInterning) {
  EXPECT_EQ(fac_->InternVar("x"), x_);
  EXPECT_EQ(fac_->VarName(y_), "y");
  EXPECT_EQ(fac_->num_vars(), 2u);
}

}  // namespace
}  // namespace fotl
}  // namespace tic
