// Tests for the PTL satisfiability tableau (Lemma 4.2, phase 2), including
// the witness-extraction property loop: every SAT verdict must come with a
// lasso model on which independent evaluation confirms the formula.

#include <gtest/gtest.h>

#include <random>

#include "ptl/formula.h"
#include "ptl/nnf.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

class TableauTest : public ::testing::Test {
 protected:
  TableauTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = fac_.Atom(vocab_->Intern("p"));
    q_ = fac_.Atom(vocab_->Intern("q"));
    r_ = fac_.Atom(vocab_->Intern("r"));
  }

  bool Sat(Formula f) {
    auto res = CheckSat(&fac_, f);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (!res.ok()) return false;
    if (res->satisfiable) {
      // Witness audit: the extracted lasso must satisfy f.
      EXPECT_TRUE(res->witness.has_value());
      auto holds = Evaluate(*res->witness, f, 0);
      EXPECT_TRUE(holds.ok()) << holds.status().ToString();
      EXPECT_TRUE(*holds) << "witness does not satisfy " << ToString(fac_, f);
    }
    return res->satisfiable;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  Formula p_, q_, r_;
};

TEST_F(TableauTest, Constants) {
  EXPECT_TRUE(Sat(fac_.True()));
  EXPECT_FALSE(Sat(fac_.False()));
}

TEST_F(TableauTest, Literals) {
  EXPECT_TRUE(Sat(p_));
  EXPECT_TRUE(Sat(fac_.Not(p_)));
  EXPECT_FALSE(Sat(fac_.And(p_, fac_.Not(p_))));
  EXPECT_TRUE(Sat(fac_.Or(p_, fac_.Not(p_))));
}

TEST_F(TableauTest, BasicTemporal) {
  EXPECT_TRUE(Sat(fac_.Next(p_)));
  EXPECT_TRUE(Sat(fac_.Always(p_)));
  EXPECT_TRUE(Sat(fac_.Eventually(p_)));
  EXPECT_TRUE(Sat(fac_.Until(p_, q_)));
  EXPECT_TRUE(Sat(fac_.Release(p_, q_)));
}

TEST_F(TableauTest, ClassicUnsat) {
  // G p & F !p.
  EXPECT_FALSE(Sat(fac_.And(fac_.Always(p_), fac_.Eventually(fac_.Not(p_)))));
  // F p & G !p.
  EXPECT_FALSE(Sat(fac_.And(fac_.Eventually(p_), fac_.Always(fac_.Not(p_)))));
  // X p & X !p.
  EXPECT_FALSE(Sat(fac_.And(fac_.Next(p_), fac_.Next(fac_.Not(p_)))));
  // (p U q) & G !q.
  EXPECT_FALSE(Sat(fac_.And(fac_.Until(p_, q_), fac_.Always(fac_.Not(q_)))));
}

TEST_F(TableauTest, EventualityInsideAlways) {
  // G F p is satisfiable; G F p & F G !p is not.
  Formula gfp = fac_.Always(fac_.Eventually(p_));
  EXPECT_TRUE(Sat(gfp));
  EXPECT_FALSE(Sat(fac_.And(gfp, fac_.Eventually(fac_.Always(fac_.Not(p_))))));
}

TEST_F(TableauTest, UntilUnfoldingChain) {
  // p & X p & X X !p & (p U q) forces q within two steps... actually q can
  // come at step 0, 1 or 2; all consistent. Make it unsat by banning q.
  Formula f = fac_.AndAll({p_, fac_.Next(p_), fac_.Next(fac_.Next(fac_.Not(p_))),
                           fac_.Until(p_, q_), fac_.Always(fac_.Not(q_))});
  EXPECT_FALSE(Sat(f));
  Formula g = fac_.AndAll({p_, fac_.Next(p_), fac_.Next(fac_.Next(fac_.Not(p_))),
                           fac_.Until(p_, q_)});
  EXPECT_TRUE(Sat(g));
}

TEST_F(TableauTest, ReleaseSemantics) {
  // q R p: p holds until (and including when) q releases it.
  // (q R p) & !p is unsat at the first instant.
  EXPECT_FALSE(Sat(fac_.And(fac_.Release(q_, p_), fac_.Not(p_))));
  // (q R p) & G !q forces G p: contradiction with F !p.
  EXPECT_FALSE(Sat(fac_.AndAll({fac_.Release(q_, p_), fac_.Always(fac_.Not(q_)),
                                fac_.Eventually(fac_.Not(p_))})));
}

TEST_F(TableauTest, ValidityAndEquivalence) {
  // !(p U q)  ==  !p R !q  (the NNF duality).
  auto eq = CheckEquivalent(&fac_, fac_.Not(fac_.Until(p_, q_)),
                            fac_.Release(fac_.Not(p_), fac_.Not(q_)));
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  // F p == true U p.
  auto eq2 = CheckEquivalent(&fac_, fac_.Eventually(p_), fac_.Until(fac_.True(), p_));
  ASSERT_TRUE(eq2.ok());
  EXPECT_TRUE(*eq2);
  // G p == false R p.
  auto eq3 = CheckEquivalent(&fac_, fac_.Always(p_), fac_.Release(fac_.False(), p_));
  ASSERT_TRUE(eq3.ok());
  EXPECT_TRUE(*eq3);
  // p U q is NOT equivalent to F q.
  auto eq4 = CheckEquivalent(&fac_, fac_.Until(p_, q_), fac_.Eventually(q_));
  ASSERT_TRUE(eq4.ok());
  EXPECT_FALSE(*eq4);
}

TEST_F(TableauTest, WitnessRespectsStem) {
  // !p & X p & G (p -> X p): witness must start with !p then p forever.
  Formula f = fac_.AndAll(
      {fac_.Not(p_), fac_.Next(p_), fac_.Always(fac_.Implies(p_, fac_.Next(p_)))});
  auto res = CheckSat(&fac_, f);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->satisfiable);
  const auto& w = *res->witness;
  EXPECT_FALSE(w.StateAt(0).Get(p_->atom()));
  for (size_t t = 1; t < w.NumPositions() + 2; ++t) {
    EXPECT_TRUE(w.StateAt(t).Get(p_->atom())) << "t=" << t;
  }
}

TEST_F(TableauTest, StatsPopulated) {
  auto res = CheckSat(&fac_, fac_.Until(p_, q_));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->stats.num_states, 0u);
  EXPECT_GT(res->stats.num_expansions, 0u);
}

TEST_F(TableauTest, BudgetExhaustion) {
  TableauOptions opts;
  opts.max_states = 1;
  // Needs more than one tableau state.
  Formula f = fac_.And(fac_.Until(p_, q_), fac_.Until(q_, r_));
  auto res = CheckSat(&fac_, f, opts);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsResourceExhausted());
}

TEST_F(TableauTest, LongConjunctionChainExpandsFast) {
  // Micro-test for PopPreferred's swap-and-pop removal (legacy engine): a
  // conjunction of thousands of unit formulas keeps the todo list long while
  // every pop scans for a non-branching entry. With the old erase-at-i this
  // was quadratic in the chain length; the test pins the behavior (correct
  // verdict + witness) and serves as the regression workload.
  constexpr size_t kChain = 2000;
  std::vector<Formula> units;
  std::vector<PropId> letters;
  for (size_t i = 0; i < kChain; ++i) {
    PropId letter = vocab_->Intern("c" + std::to_string(i));
    letters.push_back(letter);
    units.push_back(fac_.Atom(letter));
  }
  // A couple of disjunctions subsumed by the units: they must be deferred
  // behind the whole unit chain and then discharged without branching.
  units.push_back(fac_.Or(units[0], units[1]));
  units.push_back(fac_.Or(fac_.Not(units[2]), units[3]));
  Formula f = fac_.AndAll(units);

  TableauOptions legacy;
  legacy.engine = TableauEngine::kLegacy;
  auto res = CheckSat(&fac_, f, legacy);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->satisfiable);
  for (PropId letter : letters) {
    ASSERT_TRUE(res->witness->StateAt(0).Get(letter));
  }
  // And the unsat flip: one clashing literal buried in the chain.
  auto contra = CheckSat(
      &fac_, fac_.And(f, fac_.Not(units[kChain / 2])), legacy);
  ASSERT_TRUE(contra.ok());
  EXPECT_FALSE(contra->satisfiable);
}

// ---------------------------------------------------------------------------
// Property sweep: random formulas. For each, (a) SAT answers must be stable
// under double negation, (b) witnesses must evaluate to true, (c) f | !f must
// always be satisfiable, and (d) f & !f must never be.
// ---------------------------------------------------------------------------

class RandomFormulaTest : public ::testing::TestWithParam<int> {};

Formula RandomFormula(Factory* fac, std::mt19937* rng, const std::vector<Formula>& atoms,
                      int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 9);
  switch (pick(*rng)) {
    case 0:
      return atoms[(*rng)() % atoms.size()];
    case 1:
      return fac->Not(atoms[(*rng)() % atoms.size()]);
    case 2:
      return fac->Not(RandomFormula(fac, rng, atoms, depth - 1));
    case 3:
      return fac->And(RandomFormula(fac, rng, atoms, depth - 1),
                      RandomFormula(fac, rng, atoms, depth - 1));
    case 4:
      return fac->Or(RandomFormula(fac, rng, atoms, depth - 1),
                     RandomFormula(fac, rng, atoms, depth - 1));
    case 5:
      return fac->Next(RandomFormula(fac, rng, atoms, depth - 1));
    case 6:
      return fac->Until(RandomFormula(fac, rng, atoms, depth - 1),
                        RandomFormula(fac, rng, atoms, depth - 1));
    case 7:
      return fac->Release(RandomFormula(fac, rng, atoms, depth - 1),
                          RandomFormula(fac, rng, atoms, depth - 1));
    case 8:
      return fac->Eventually(RandomFormula(fac, rng, atoms, depth - 1));
    default:
      return fac->Always(RandomFormula(fac, rng, atoms, depth - 1));
  }
}

TEST_P(RandomFormulaTest, SatVerdictsAreCoherent) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = {fac.Atom(vocab->Intern("a")),
                                fac.Atom(vocab->Intern("b")),
                                fac.Atom(vocab->Intern("c"))};
  std::mt19937 rng(GetParam());
  Formula f = RandomFormula(&fac, &rng, atoms, 4);

  auto sat_f = CheckSat(&fac, f);
  ASSERT_TRUE(sat_f.ok()) << sat_f.status().ToString();
  auto sat_nf = CheckSat(&fac, fac.Not(f));
  ASSERT_TRUE(sat_nf.ok());

  // Witnesses evaluate true.
  if (sat_f->satisfiable) {
    auto holds = Evaluate(*sat_f->witness, f, 0);
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds) << ToString(fac, f);
  }
  if (sat_nf->satisfiable) {
    auto holds = Evaluate(*sat_nf->witness, fac.Not(f), 0);
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds);
  }

  // At least one of f, !f is satisfiable.
  EXPECT_TRUE(sat_f->satisfiable || sat_nf->satisfiable);
  // f & !f never is.
  auto contra = CheckSat(&fac, fac.And(f, fac.Not(f)));
  ASSERT_TRUE(contra.ok());
  EXPECT_FALSE(contra->satisfiable);
  // Double negation stability.
  auto sat_nnf = CheckSat(&fac, fac.Not(fac.Not(f)));
  ASSERT_TRUE(sat_nnf.ok());
  EXPECT_EQ(sat_f->satisfiable, sat_nnf->satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormulaTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace ptl
}  // namespace tic
