// Unit tests for the bitset engine's building blocks — FlatBits (inline and
// heap-spill widths) and the Fischer–Ladner Closure indexing — plus
// engine-level contracts of TableauEngine::kBitset that the differential
// sweep does not pin down (budgets, stats, option toggles).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptl/bitset.h"
#include "ptl/closure.h"
#include "ptl/formula.h"
#include "ptl/nnf.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {
namespace {

TEST(FlatBitsTest, SetTestResetAcrossWidths) {
  for (uint32_t width : {1u, 64u, 65u, 256u, 257u, 1000u}) {
    FlatBits b(width);
    EXPECT_EQ(b.spilled(), width > 256u) << width;
    EXPECT_TRUE(b.Empty());
    EXPECT_EQ(b.FindFirst(), FlatBits::kNpos);
    b.Set(width - 1);
    EXPECT_TRUE(b.Test(width - 1));
    EXPECT_FALSE(b.Empty());
    EXPECT_EQ(b.FindFirst(), width - 1);
    b.Set(0);
    EXPECT_EQ(b.FindFirst(), 0u);
    b.Reset(0);
    b.Reset(width - 1);
    EXPECT_TRUE(b.Empty());
  }
}

TEST(FlatBitsTest, WordParallelOps) {
  FlatBits a(300), b(300);
  a.Set(3);
  a.Set(77);
  b.Set(77);
  b.Set(299);
  EXPECT_TRUE(a.Intersects(b));
  a.OrWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(77));
  EXPECT_TRUE(a.Test(299));

  std::vector<uint32_t> seen;
  a.ForEach([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{3, 77, 299}));

  FlatBits mask(300);
  mask.Set(77);
  mask.Set(200);
  seen.clear();
  a.ForEachAnd(mask, [&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{77}));

  FlatBits c(300);
  c.Set(5);
  EXPECT_FALSE(b.Intersects(c));
}

TEST(FlatBitsTest, EqualityHashAndCopySemantics) {
  for (uint32_t width : {100u, 500u}) {
    FlatBits a(width);
    a.Set(7);
    a.Set(width - 2);
    FlatBits copy = a;
    EXPECT_EQ(copy, a);
    EXPECT_EQ(copy.Hash(), a.Hash());
    copy.Set(11);
    EXPECT_NE(copy, a);

    FlatBits assigned(width);
    assigned = a;
    EXPECT_EQ(assigned, a);

    FlatBits moved = std::move(copy);
    EXPECT_TRUE(moved.Test(11));

    // AssignWords round-trips through a raw row, as the state arena does.
    FlatBits from_words(width);
    from_words.AssignWords(a.words());
    EXPECT_EQ(from_words, a);
    EXPECT_EQ(FlatBits::HashWords(a.words(), a.num_words()), a.Hash());
  }
}

class ClosureTest : public ::testing::Test {
 protected:
  ClosureTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = fac_.Atom(vocab_->Intern("p"));
    q_ = fac_.Atom(vocab_->Intern("q"));
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  Formula p_, q_;
};

TEST_F(ClosureTest, MembersRulesAndObligations) {
  // (p U q) & G !p — NNF already.
  Formula f = fac_.And(fac_.Until(p_, q_), fac_.Always(fac_.Not(p_)));
  auto cl = Closure::Build(&fac_, ToNnf(&fac_, f));
  ASSERT_TRUE(cl.ok()) << cl.status().ToString();

  // Root is the And, and every subformula plus the X(f) of each temporal
  // member is present exactly once. Find members by formula (the factory
  // canonicalizes And operand order, so lhs/rhs position is not fixed).
  EXPECT_EQ(cl->member(cl->root()), ToNnf(&fac_, f));
  const auto& root_rule = cl->rule(cl->root());
  EXPECT_EQ(root_rule.op, Closure::Op::kAnd);
  auto find = [&](Formula g) {
    for (uint32_t i = 0; i < cl->size(); ++i) {
      if (cl->member(i) == g) return i;
    }
    ADD_FAILURE() << "member not found";
    return Closure::kNone;
  };
  uint32_t until_idx = find(fac_.Until(p_, q_));
  uint32_t always_idx = find(fac_.Always(fac_.Not(p_)));
  EXPECT_TRUE((root_rule.a == until_idx && root_rule.b == always_idx) ||
              (root_rule.a == always_idx && root_rule.b == until_idx));

  const auto& until_rule = cl->rule(until_idx);
  EXPECT_EQ(until_rule.op, Closure::Op::kUntil);
  EXPECT_FALSE(until_rule.is_alpha);
  EXPECT_EQ(cl->member(until_rule.goal), q_);
  EXPECT_EQ(cl->member(until_rule.next_self), fac_.Next(fac_.Until(p_, q_)));
  EXPECT_TRUE(cl->obligation_mask().Test(until_idx));

  const auto& always_rule = cl->rule(always_idx);
  EXPECT_EQ(always_rule.op, Closure::Op::kAlways);
  EXPECT_TRUE(always_rule.is_alpha);
  EXPECT_FALSE(cl->obligation_mask().Test(always_idx));

  // The literal pair is cross-linked for the clash check.
  const auto& neg_rule = cl->rule(always_rule.a);
  ASSERT_EQ(neg_rule.op, Closure::Op::kLitNeg);
  EXPECT_EQ(cl->member(neg_rule.complement), p_);
  const auto& pos_rule = cl->rule(neg_rule.complement);
  ASSERT_EQ(pos_rule.op, Closure::Op::kLitPos);
  EXPECT_EQ(pos_rule.complement, always_rule.a);
  EXPECT_EQ(pos_rule.atom, p_->atom());

  // Membership count: And, U, G, X U, X G, p, !p, q — 8 distinct members.
  EXPECT_EQ(cl->size(), 8u);
}

TEST_F(ClosureTest, IndexingIsDeterministicAcrossBuilds) {
  Formula f = ToNnf(
      &fac_, fac_.And(fac_.Until(p_, q_), fac_.Eventually(fac_.Not(q_))));
  auto a = Closure::Build(&fac_, f);
  auto b = Closure::Build(&fac_, f);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(a->root(), b->root());
  for (uint32_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->member(i), b->member(i)) << i;
  }
}

TEST_F(ClosureTest, RejectsNonNnfInput) {
  EXPECT_FALSE(Closure::Build(&fac_, fac_.Implies(p_, q_)).ok());
  EXPECT_FALSE(Closure::Build(&fac_, fac_.Not(fac_.Always(p_))).ok());
}

class BitsetEngineTest : public ::testing::Test {
 protected:
  BitsetEngineTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = fac_.Atom(vocab_->Intern("p"));
    q_ = fac_.Atom(vocab_->Intern("q"));
    r_ = fac_.Atom(vocab_->Intern("r"));
    opts_.engine = TableauEngine::kBitset;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  Formula p_, q_, r_;
  TableauOptions opts_;
};

TEST_F(BitsetEngineTest, StatsArePopulated) {
  auto res = CheckSat(&fac_, fac_.Until(p_, q_), opts_);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->stats.num_states, 0u);
  EXPECT_GT(res->stats.num_expansions, 0u);
}

TEST_F(BitsetEngineTest, MaxStatesBudgetEnforced) {
  opts_.max_states = 1;
  Formula f = fac_.And(fac_.Until(p_, q_), fac_.Until(q_, r_));
  auto res = CheckSat(&fac_, f, opts_);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsResourceExhausted());
}

TEST_F(BitsetEngineTest, MaxExpansionsBudgetEnforced) {
  opts_.max_expansions = 2;
  Formula f = fac_.And(fac_.Or(p_, q_), fac_.Or(q_, r_));
  auto res = CheckSat(&fac_, f, opts_);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsResourceExhausted());
}

TEST_F(BitsetEngineTest, BranchDepthBudgetEnforced) {
  opts_.max_branch_depth = 1;
  // Two pending splits on one branch: depth 2 > 1.
  Formula f = fac_.And(fac_.Or(p_, q_), fac_.Or(fac_.Not(p_), r_));
  auto res = CheckSat(&fac_, f, opts_);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsResourceExhausted());
}

TEST_F(BitsetEngineTest, OptionTogglesPreserveVerdicts) {
  // Subsumption and the safety fast path are pure accelerations: flipping
  // them must not change any verdict.
  std::vector<Formula> formulas = {
      fac_.Always(fac_.Implies(p_, fac_.Next(q_))),
      fac_.And(fac_.Always(p_), fac_.Eventually(fac_.Not(p_))),
      fac_.Until(p_, fac_.And(q_, fac_.Not(q_))),
      fac_.Release(p_, fac_.Or(q_, r_)),
      fac_.AndAll({fac_.Or(p_, q_), fac_.Or(fac_.Not(p_), r_),
                   fac_.Eventually(q_)}),
  };
  for (Formula f : formulas) {
    auto base = CheckSat(&fac_, f, opts_);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    for (bool subsumption : {false, true}) {
      for (bool fast_path : {false, true}) {
        TableauOptions o = opts_;
        o.use_subsumption = subsumption;
        o.use_safety_fast_path = fast_path;
        auto res = CheckSat(&fac_, f, o);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        EXPECT_EQ(res->satisfiable, base->satisfiable)
            << ToString(fac_, f) << " subsumption=" << subsumption
            << " fast_path=" << fast_path;
      }
    }
  }
}

TEST_F(BitsetEngineTest, VerdictCacheWorksAcrossEngines) {
  // A cache filled by one engine must serve the other: entries are keyed by
  // the canonical formula, not by engine.
  auto cache = std::make_shared<VerdictCache>();
  TableauOptions legacy;
  legacy.engine = TableauEngine::kLegacy;
  legacy.verdict_cache = cache;
  TableauOptions bitset = opts_;
  bitset.verdict_cache = cache;

  Formula f = fac_.And(fac_.Until(p_, q_), fac_.Always(fac_.Not(q_)));
  auto first = CheckSat(&fac_, f, legacy);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.cache_misses, 1u);
  auto second = CheckSat(&fac_, f, bitset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache_hits, 1u);
  EXPECT_EQ(second->satisfiable, first->satisfiable);
}

}  // namespace
}  // namespace ptl
}  // namespace tic
