// Tests for MergeUniversal: conjunctions of universal sentences normalized
// back into the Theorem 4.2 fragment, verified end-to-end through the checker.

#include <gtest/gtest.h>

#include "checker/extension.h"
#include "fotl/classify.h"
#include "fotl/normalize.h"
#include "fotl/parser.h"
#include "fotl/printer.h"

namespace tic {
namespace fotl {
namespace {

class NormalizeTest : public ::testing::Test {
 protected:
  NormalizeTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<FormulaFactory>(vocab_);
    submit_once_ = *Parse(fac_.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
    fifo_ = *Parse(fac_.get(),
                   "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
                   "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<FormulaFactory> fac_;
  Formula submit_once_ = nullptr;
  Formula fifo_ = nullptr;
};

TEST_F(NormalizeTest, EmptyAndSingleton) {
  auto empty = MergeUniversal(fac_.get(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, fac_->True());

  auto single = MergeUniversal(fac_.get(), {submit_once_});
  ASSERT_TRUE(single.ok());
  Classification c = Classify(*single);
  EXPECT_TRUE(c.universal);
  EXPECT_EQ(c.external_universals.size(), 1u);
}

TEST_F(NormalizeTest, MergedConjunctionIsUniversal) {
  auto merged = MergeUniversal(fac_.get(), {submit_once_, fifo_});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Classification c = Classify(*merged);
  EXPECT_TRUE(c.universal);
  EXPECT_TRUE(c.closed);
  EXPECT_EQ(c.external_universals.size(), 2u);  // max(1, 2)
}

TEST_F(NormalizeTest, MergedConstraintChecksBothPolicies) {
  auto merged = *MergeUniversal(fac_.get(), {submit_once_, fifo_});

  // History violating only submit-once.
  History h1 = *History::Create(vocab_);
  (void)h1.AppendEmptyState()->Insert(sub_, {1});
  (void)h1.AppendEmptyState()->Insert(sub_, {1});
  auto r1 = checker::CheckPotentialSatisfaction(*fac_, merged, h1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1->potentially_satisfied);

  // History violating only FIFO.
  History h2 = *History::Create(vocab_);
  (void)h2.AppendEmptyState()->Insert(sub_, {1});
  (void)h2.AppendEmptyState()->Insert(sub_, {2});
  (void)h2.AppendEmptyState()->Insert(fill_, {2});
  auto r2 = checker::CheckPotentialSatisfaction(*fac_, merged, h2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->potentially_satisfied);

  // Clean history: both hold.
  History h3 = *History::Create(vocab_);
  (void)h3.AppendEmptyState()->Insert(sub_, {1});
  (void)h3.AppendEmptyState()->Insert(fill_, {1});
  auto r3 = checker::CheckPotentialSatisfaction(*fac_, merged, h3);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->potentially_satisfied);
}

TEST_F(NormalizeTest, AgreesWithSeparateChecks) {
  auto merged = *MergeUniversal(fac_.get(), {submit_once_, fifo_});
  // Over a few histories: merged verdict == (submit_once && fifo).
  for (int variant = 0; variant < 4; ++variant) {
    History h = *History::Create(vocab_);
    (void)h.AppendEmptyState()->Insert(sub_, {1});
    DatabaseState* s1 = h.AppendEmptyState();
    if (variant & 1) (void)s1->Insert(sub_, {1});  // resubmit
    if (variant & 2) {
      (void)s1->Insert(sub_, {2});
      (void)h.AppendEmptyState()->Insert(fill_, {2});  // out-of-order fill
    }
    auto rm = checker::CheckPotentialSatisfaction(*fac_, merged, h);
    auto ra = checker::CheckPotentialSatisfaction(*fac_, submit_once_, h);
    auto rb = checker::CheckPotentialSatisfaction(*fac_, fifo_, h);
    ASSERT_TRUE(rm.ok() && ra.ok() && rb.ok());
    EXPECT_EQ(rm->potentially_satisfied,
              ra->potentially_satisfied && rb->potentially_satisfied)
        << "variant " << variant;
  }
}

TEST_F(NormalizeTest, RejectsNonUniversal) {
  Formula existential = *Parse(fac_.get(), "exists x . G Sub(x)");
  auto r = MergeUniversal(fac_.get(), {submit_once_, existential});
  EXPECT_TRUE(r.status().IsNotSupported());

  Formula open = *Parse(fac_.get(), "Sub(x)");
  auto r2 = MergeUniversal(fac_.get(), {open});
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST_F(NormalizeTest, SharedVariableNamesDoNotCollide) {
  // Both constraints use "x" as their prefix variable; renaming must keep the
  // conjuncts independent.
  Formula a = *Parse(fac_.get(), "forall x . G !Sub(x)");
  Formula b = *Parse(fac_.get(), "forall x . G !Fill(x)");
  auto merged = MergeUniversal(fac_.get(), {a, b});
  ASSERT_TRUE(merged.ok());
  // One shared variable: forall $u0 . G !Sub($u0) & G !Fill($u0).
  Classification c = Classify(*merged);
  EXPECT_EQ(c.external_universals.size(), 1u);
  History h = *History::Create(vocab_);
  (void)h.AppendEmptyState()->Insert(sub_, {5});
  auto r = checker::CheckPotentialSatisfaction(*fac_, *merged, h);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->potentially_satisfied);  // Sub(5) already violates G !Sub
}

}  // namespace
}  // namespace fotl
}  // namespace tic
