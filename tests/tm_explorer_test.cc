// Tests for the bounded repeating-behaviour exploration (the computational
// content of Theorem 3.1) and the Lemma 3.1 dovetailing schema.

#include <gtest/gtest.h>

#include "tm/explorer.h"

namespace tic {
namespace tm {
namespace {

TEST(ExplorerTest, HaltingMachineIsRefuted) {
  TuringMachine m = *MakeImmediateHaltMachine();
  auto r = ExploreRepeating(m, "0101", 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, StepOutcome::kHalt);
  EXPECT_EQ(r->origin_visits, 1u);
}

TEST(ExplorerTest, ShuttleAccumulatesVisits) {
  TuringMachine m = *MakeShuttleMachine();
  auto r = ExploreRepeating(m, "01", 10000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, StepOutcome::kContinue);  // undecided, as it must be
  EXPECT_GT(r->origin_visits, 1000u);
}

TEST(ExplorerTest, RightWalkerStaysAtOneVisit) {
  TuringMachine m = *MakeRightWalkerMachine();
  auto r = ExploreRepeating(m, "01", 10000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, StepOutcome::kContinue);
  EXPECT_EQ(r->origin_visits, 1u);
}

TEST(ExplorerTest, ReachesOriginVisitsSemiDecision) {
  TuringMachine shuttle = *MakeShuttleMachine();
  auto yes = ReachesOriginVisits(shuttle, "01", 50, 100000);
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_TRUE(*yes);

  TuringMachine halting = *MakeImmediateHaltMachine();
  auto no = ReachesOriginVisits(halting, "01", 2, 100000);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);

  // Undecidable-within-budget case: the right walker never halts and never
  // returns; a bounded explorer cannot refute it, only give up.
  TuringMachine walker = *MakeRightWalkerMachine();
  auto undecided = ReachesOriginVisits(walker, "01", 2, 1000);
  EXPECT_TRUE(undecided.status().IsResourceExhausted());
}

TEST(ExplorerTest, BinaryCounterVisitsGrowWithBudget) {
  TuringMachine m = *MakeBinaryCounterMachine();
  auto small = ExploreRepeating(m, "", 1000);
  auto big = ExploreRepeating(m, "", 100000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->origin_visits, small->origin_visits);
}

// ---------------------------------------------------------------------------
// The Lemma 3.1 machine schema: repeating behaviour iff forall v exists u
// R(w, v, u).
// ---------------------------------------------------------------------------

TEST(DovetailTest, TotalRelationRepeatsForever) {
  // R true everywhere: every v gets its witness on the first probe.
  DovetailingMachine m([](const std::string&, uint64_t, uint64_t) { return true; },
                       "w");
  const auto& p = m.Run(1000);
  EXPECT_EQ(p.origin_visits, 1000u);
  EXPECT_EQ(p.current_v, 1000u);
}

TEST(DovetailTest, FailingVStallsForever) {
  // R(w, v, u) holds iff u == v, except v == 3 has no witness: the machine
  // completes v = 0, 1, 2 and then searches forever.
  DovetailingMachine m(
      [](const std::string&, uint64_t v, uint64_t u) { return v != 3 && u == v; },
      "w");
  m.Run(100000);
  EXPECT_EQ(m.progress().origin_visits, 3u);
  EXPECT_EQ(m.progress().current_v, 3u);
  m.Run(100000);  // more budget does not help
  EXPECT_EQ(m.progress().origin_visits, 3u);
}

TEST(DovetailTest, SparseWitnessesSlowButComplete) {
  // Witness for v sits at u = 10 * v: visits accumulate, sublinearly in probes.
  DovetailingMachine m(
      [](const std::string&, uint64_t v, uint64_t u) { return u == 10 * v; }, "w");
  const auto& p = m.Run(10000);
  EXPECT_GT(p.origin_visits, 40u);
  EXPECT_LT(p.origin_visits, 10000u);
}

TEST(DovetailTest, InputDependentBehaviour) {
  // R(w, v, u) iff u == v + |w|: all inputs repeat, with different probe costs.
  auto rel = [](const std::string& w, uint64_t v, uint64_t u) {
    return u == v + w.size();
  };
  DovetailingMachine short_input(rel, "0");
  DovetailingMachine long_input(rel, "000000000000");
  short_input.Run(5000);
  long_input.Run(5000);
  EXPECT_GT(short_input.progress().origin_visits,
            long_input.progress().origin_visits);
}

TEST(DovetailTest, ProgressIsCumulativeAcrossRuns) {
  DovetailingMachine m([](const std::string&, uint64_t, uint64_t) { return true; },
                       "w");
  m.Run(10);
  m.Run(15);
  EXPECT_EQ(m.progress().probes, 25u);
  EXPECT_EQ(m.progress().origin_visits, 25u);
}

}  // namespace
}  // namespace tm
}  // namespace tic
