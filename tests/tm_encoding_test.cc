// Tests for the Section 3 configuration encoding: database states over the
// monadic vocabulary, round-tripping, and computation histories.

#include <gtest/gtest.h>

#include "tm/encoding.h"

namespace tic {
namespace tm {
namespace {

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest() : machine_(*MakeShuttleMachine()) {}
  TuringMachine machine_;
};

TEST_F(EncodingTest, VocabularyShape) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  const Vocabulary& v = *enc.vocabulary();
  // 3 states + 3 non-blank symbols (0, 1, M) + 3 builtins = 9 predicates.
  EXPECT_EQ(v.num_predicates(), 9u);
  EXPECT_TRUE(v.FindPredicate("P_q0").ok());
  EXPECT_TRUE(v.FindPredicate("P_qR").ok());
  EXPECT_TRUE(v.FindPredicate("P_0").ok());
  EXPECT_TRUE(v.FindPredicate("P_M").ok());
  EXPECT_TRUE(v.FindPredicate("P_B").status().IsNotFound());  // blank: abbreviation
  EXPECT_TRUE(v.HasBuiltins());
  EXPECT_TRUE(enc.symbol_pred('B').status().IsNotFound());
}

TEST_F(EncodingTest, WithWAddsThePredicate) {
  TmEncoding enc = *TmEncoding::Create(&machine_, /*with_w=*/true);
  EXPECT_TRUE(enc.with_w());
  EXPECT_EQ(enc.vocabulary()->predicate(enc.w_pred()).name, "W");
}

TEST_F(EncodingTest, EncodeInitialConfiguration) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  Simulator sim(&machine_);
  Configuration c = *sim.Initial("01");
  auto s = enc.EncodeConfiguration(c);
  ASSERT_TRUE(s.ok());
  // Word: q0 0 1 (blanks beyond): P_q0(0), P_0(1), P_1(2).
  EXPECT_TRUE(s->Holds(enc.state_pred(0), {0}));
  EXPECT_TRUE(s->Holds(*enc.symbol_pred('0'), {1}));
  EXPECT_TRUE(s->Holds(*enc.symbol_pred('1'), {2}));
  EXPECT_EQ(s->TotalTuples(), 3u);  // nothing else
}

TEST_F(EncodingTest, EncodeMidComputation) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  Simulator sim(&machine_);
  Configuration c = *sim.Initial("01");
  ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);  // wrote M, moved right
  // Word: M qR 1 : P_M(0), P_qR(1), P_1(2).
  auto s = enc.EncodeConfiguration(c);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Holds(*enc.symbol_pred('M'), {0}));
  EXPECT_TRUE(s->Holds(enc.state_pred(1), {1}));
  EXPECT_TRUE(s->Holds(*enc.symbol_pred('1'), {2}));
}

TEST_F(EncodingTest, RoundTrip) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  Simulator sim(&machine_);
  Configuration c = *sim.Initial("0110");
  for (int step = 0; step < 25; ++step) {
    auto s = enc.EncodeConfiguration(c);
    ASSERT_TRUE(s.ok());
    auto back = enc.DecodeState(*s, 64);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->state, c.state) << "step " << step;
    EXPECT_EQ(back->head, c.head);
    // Tapes agree up to trailing blanks.
    std::vector<char> a = c.tape, b = back->tape;
    while (!a.empty() && a.back() == 'B') a.pop_back();
    while (!b.empty() && b.back() == 'B') b.pop_back();
    EXPECT_EQ(a, b);
    ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  }
}

TEST_F(EncodingTest, DecodeRejectsCorruptStates) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  // No state symbol at all.
  DatabaseState empty(enc.vocabulary());
  EXPECT_TRUE(enc.DecodeState(empty, 8).status().IsInvalidArgument());
  // Two state symbols.
  DatabaseState two(enc.vocabulary());
  ASSERT_TRUE(two.Insert(enc.state_pred(0), {0}).ok());
  ASSERT_TRUE(two.Insert(enc.state_pred(1), {3}).ok());
  EXPECT_TRUE(enc.DecodeState(two, 8).status().IsInvalidArgument());
  // Two symbols at one position.
  DatabaseState dup(enc.vocabulary());
  ASSERT_TRUE(dup.Insert(enc.state_pred(0), {0}).ok());
  ASSERT_TRUE(dup.Insert(*enc.symbol_pred('0'), {1}).ok());
  ASSERT_TRUE(dup.Insert(*enc.symbol_pred('1'), {1}).ok());
  EXPECT_TRUE(enc.DecodeState(dup, 8).status().IsInvalidArgument());
}

TEST_F(EncodingTest, EncodeComputationHistory) {
  TmEncoding enc = *TmEncoding::Create(&machine_);
  auto h = enc.EncodeComputation("01", 10);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->length(), 10u);
  // State 0 encodes the initial configuration.
  EXPECT_TRUE(h->state(0).Holds(enc.state_pred(0), {0}));
  // Each state has exactly one state-predicate tuple.
  for (size_t t = 0; t < 10; ++t) {
    size_t state_tuples = 0;
    for (uint32_t q = 0; q < machine_.num_states(); ++q) {
      state_tuples += h->state(t).relation(enc.state_pred(q)).size();
    }
    EXPECT_EQ(state_tuples, 1u) << "t=" << t;
  }
}

TEST_F(EncodingTest, EncodeComputationFailsOnHaltingMachine) {
  TuringMachine halt = *MakeImmediateHaltMachine();
  TmEncoding enc = *TmEncoding::Create(&halt);
  auto h = enc.EncodeComputation("01", 5);
  EXPECT_TRUE(h.status().IsInvalidArgument());
  // A single state is fine (the machine halts *after* producing it).
  auto h1 = enc.EncodeComputation("01", 1);
  EXPECT_TRUE(h1.ok());
}

TEST_F(EncodingTest, WithWMarksStateIndex) {
  TmEncoding enc = *TmEncoding::Create(&machine_, /*with_w=*/true);
  auto h = enc.EncodeComputation("0", 5);
  ASSERT_TRUE(h.ok());
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_TRUE(h->state(t).Holds(enc.w_pred(), {static_cast<Value>(t)}));
    EXPECT_EQ(h->state(t).relation(enc.w_pred()).size(), 1u);
  }
}

}  // namespace
}  // namespace tm
}  // namespace tic
