// Tests for the Section 3 / Appendix formula constructions: phi (Proposition
// 3.1) and phi-tilde (Theorem 3.2). The strongest check: the shuttle machine's
// computation is ultimately periodic, so we can represent the *infinite*
// encoded temporal database exactly and evaluate phi on it directly — it must
// hold on genuine repeating computations and fail on corrupted ones.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "fotl/classify.h"
#include "fotl/evaluator.h"
#include "fotl/printer.h"
#include "tm/formulas.h"

namespace tic {
namespace tm {
namespace {

// Runs `machine` on `input` until the configuration (state, head, tape)
// repeats; returns the encoded lasso database. Only terminates for machines
// with ultimately periodic computations (e.g. the shuttle).
Result<UltimatelyPeriodicDb> EncodePeriodicComputation(const TmEncoding& enc,
                                                       const std::string& input,
                                                       size_t max_steps) {
  Simulator sim(&enc.machine());
  TIC_ASSIGN_OR_RETURN(Configuration c, sim.Initial(input));
  std::map<std::tuple<uint32_t, size_t, std::vector<char>>, size_t> seen;
  std::vector<DatabaseState> states;
  for (size_t step = 0; step <= max_steps; ++step) {
    std::vector<char> tape = c.tape;
    while (!tape.empty() && tape.back() == 'B') tape.pop_back();
    auto key = std::make_tuple(c.state, c.head, tape);
    auto it = seen.find(key);
    if (it != seen.end()) {
      size_t start = it->second;
      std::vector<DatabaseState> prefix(states.begin(),
                                        states.begin() + static_cast<long>(start));
      std::vector<DatabaseState> loop(states.begin() + static_cast<long>(start),
                                      states.end());
      return UltimatelyPeriodicDb(enc.vocabulary(), {}, std::move(prefix),
                                  std::move(loop));
    }
    seen.emplace(std::move(key), step);
    TIC_ASSIGN_OR_RETURN(DatabaseState s, enc.EncodeConfiguration(c));
    states.push_back(std::move(s));
    if (sim.Step(&c) != StepOutcome::kContinue) {
      return Status::InvalidArgument("computation ended; no lasso");
    }
  }
  return Status::ResourceExhausted("no cycle within budget");
}

class PhiTest : public ::testing::Test {
 protected:
  PhiTest()
      : machine_(*MakeShuttleMachine()),
        enc_(*TmEncoding::Create(&machine_)),
        formulas_(*BuildPhi(enc_)) {}

  // Evaluates a closed future formula on `db` over its relevant positions
  // plus a few fresh ones.
  bool Eval(const UltimatelyPeriodicDb& db, fotl::Formula f) {
    auto res = fotl::EvaluateFuture(db, f);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() && *res;
  }

  TuringMachine machine_;
  TmEncoding enc_;
  TmFormulas formulas_;
};

TEST_F(PhiTest, PhiIsUniversalWithThreeExternalQuantifiers) {
  fotl::Classification c = fotl::Classify(formulas_.phi);
  EXPECT_TRUE(c.closed);
  EXPECT_TRUE(c.biquantified);
  EXPECT_TRUE(c.universal);  // Proposition 3.1: forall^3, quantifier-free body
  EXPECT_EQ(c.external_universals.size(), 3u);
  EXPECT_TRUE(c.future_only);
}

TEST_F(PhiTest, GenuineRepeatingComputationSatisfiesPhi) {
  auto db = EncodePeriodicComputation(enc_, "01", 1000);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(Eval(*db, formulas_.uniqueness));
  EXPECT_TRUE(Eval(*db, formulas_.initial));
  EXPECT_TRUE(Eval(*db, formulas_.transition));
  EXPECT_TRUE(Eval(*db, formulas_.repeating));
  EXPECT_TRUE(Eval(*db, formulas_.phi));
}

TEST_F(PhiTest, EmptyInputComputationAlsoSatisfiesPhi) {
  auto db = EncodePeriodicComputation(enc_, "", 1000);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(Eval(*db, formulas_.phi));
}

TEST_F(PhiTest, CorruptedSymbolViolatesTransitionRules) {
  auto db = EncodePeriodicComputation(enc_, "01", 1000);
  ASSERT_TRUE(db.ok());
  // Flip a tape symbol in the second loop state: successor relation breaks.
  std::vector<DatabaseState> prefix, loop;
  for (size_t t = 0; t < db->prefix_length(); ++t) prefix.push_back(db->StateAt(t));
  for (size_t t = 0; t < db->loop_length(); ++t) {
    loop.push_back(db->StateAt(db->prefix_length() + t));
  }
  ASSERT_GE(loop.size(), 2u);
  // In the shuttle run on "01", word position 1 of the second loop state holds
  // the symbol '1' (the head is at word position 2 there); flip it to '0'.
  ASSERT_TRUE(loop[1].Holds(*enc_.symbol_pred('1'), {1}));
  ASSERT_TRUE(loop[1].Erase(*enc_.symbol_pred('1'), {1}).ok());
  ASSERT_TRUE(loop[1].Insert(*enc_.symbol_pred('0'), {1}).ok());
  UltimatelyPeriodicDb bad(enc_.vocabulary(), {}, prefix, loop);
  EXPECT_FALSE(Eval(bad, formulas_.phi));
  EXPECT_TRUE(Eval(bad, formulas_.uniqueness));  // still one symbol per cell
}

TEST_F(PhiTest, DoubledSymbolViolatesUniqueness) {
  auto db = EncodePeriodicComputation(enc_, "01", 1000);
  ASSERT_TRUE(db.ok());
  std::vector<DatabaseState> prefix, loop;
  for (size_t t = 0; t < db->prefix_length(); ++t) prefix.push_back(db->StateAt(t));
  for (size_t t = 0; t < db->loop_length(); ++t) {
    loop.push_back(db->StateAt(db->prefix_length() + t));
  }
  ASSERT_TRUE(loop[0].Insert(*enc_.symbol_pred('0'), {1}).ok());
  ASSERT_TRUE(loop[0].Insert(*enc_.symbol_pred('1'), {1}).ok());
  UltimatelyPeriodicDb bad(enc_.vocabulary(), {}, prefix, loop);
  EXPECT_FALSE(Eval(bad, formulas_.uniqueness));
  EXPECT_FALSE(Eval(bad, formulas_.phi));
}

TEST_F(PhiTest, MidComputationStartViolatesInitialCondition) {
  // Start the lasso from the configuration *after* one step: position 0 then
  // holds 'M', not the initial state symbol.
  Simulator sim(&machine_);
  Configuration c = *sim.Initial("01");
  ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  // Re-encode the shifted computation as a lasso.
  std::vector<DatabaseState> states;
  std::map<std::string, size_t> seen;
  UltimatelyPeriodicDb* found = nullptr;
  std::unique_ptr<UltimatelyPeriodicDb> bad;
  for (size_t step = 0; step < 200 && bad == nullptr; ++step) {
    std::string key = c.AsConfigurationWord(machine_);
    auto it = seen.find(key);
    if (it != seen.end()) {
      std::vector<DatabaseState> prefix(states.begin(),
                                        states.begin() + static_cast<long>(it->second));
      std::vector<DatabaseState> loop(states.begin() + static_cast<long>(it->second),
                                      states.end());
      bad = std::make_unique<UltimatelyPeriodicDb>(enc_.vocabulary(),
                                                   std::vector<Value>{}, prefix, loop);
      break;
    }
    seen.emplace(std::move(key), step);
    states.push_back(*enc_.EncodeConfiguration(c));
    ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  }
  (void)found;
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(Eval(*bad, formulas_.initial));
  EXPECT_FALSE(Eval(*bad, formulas_.phi));
  // But the rest of the groups hold (it is a genuine computation suffix).
  EXPECT_TRUE(Eval(*bad, formulas_.uniqueness));
  EXPECT_TRUE(Eval(*bad, formulas_.transition));
}

TEST_F(PhiTest, HaltingMachineOneStateCannotSatisfyTransitionRules) {
  TuringMachine halting = *MakeImmediateHaltMachine();
  TmEncoding enc = *TmEncoding::Create(&halting);
  TmFormulas f = *BuildPhi(enc);
  // The lasso repeating the initial configuration forever: the halting rule
  // (q0 scans '0' with no transition) forces false.
  Simulator sim(&halting);
  Configuration c = *sim.Initial("01");
  DatabaseState s = *enc.EncodeConfiguration(c);
  UltimatelyPeriodicDb db(enc.vocabulary(), {}, {}, {s});
  auto res = fotl::EvaluateFuture(db, f.transition);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(*res);
}

TEST_F(PhiTest, RightWalkerLassoFailsRepetitionGroup) {
  // A right-walker computation never returns to the origin. Its computation is
  // not ultimately periodic as a whole, but on the all-blank input the encoded
  // states shift right forever; fake a lasso where the head is forever away
  // from position 0 — the `repeating` group must fail while uniqueness holds.
  TuringMachine walker = *MakeRightWalkerMachine();
  TmEncoding enc = *TmEncoding::Create(&walker);
  TmFormulas f = *BuildPhi(enc);
  // A (non-computation) lasso: state symbol parked at position 5 forever.
  // Zero(x) only holds of element 0, which is not in the relevant set, so
  // evaluate with an explicit domain covering the origin.
  DatabaseState s(enc.vocabulary());
  ASSERT_TRUE(s.Insert(enc.state_pred(0), {5}).ok());
  UltimatelyPeriodicDb db(enc.vocabulary(), {}, {}, {s});
  fotl::PeriodicEvaluator ev(&db, {0, 1, 5, 6});
  auto res = ev.Evaluate(f.repeating);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(*res);
}

class PhiTildeTest : public ::testing::Test {
 protected:
  PhiTildeTest()
      : machine_(*MakeShuttleMachine()),
        enc_(*TmEncoding::Create(&machine_, /*with_w=*/true)),
        tilde_(*BuildPhiTilde(enc_)) {}

  TuringMachine machine_;
  TmEncoding enc_;
  TmTildeFormulas tilde_;
};

TEST_F(PhiTildeTest, PhiTildeIsForall3TenseSigma1) {
  fotl::Classification c = fotl::Classify(tilde_.phi_tilde);
  EXPECT_TRUE(c.closed);
  EXPECT_TRUE(c.biquantified);
  EXPECT_FALSE(c.universal);
  EXPECT_EQ(c.external_universals.size(), 3u);
  EXPECT_EQ(c.num_internal_quantifiers, 1u);  // the exists in W2
  EXPECT_TRUE(c.internal_blocks_prenex1);      // Theorem 3.2's fragment
}

TEST_F(PhiTildeTest, PhiTildeUsesNoBuiltins) {
  const Vocabulary& v = *enc_.vocabulary();
  std::function<bool(fotl::Formula)> clean = [&](fotl::Formula f) {
    if (f->kind() == fotl::NodeKind::kAtom &&
        v.predicate(f->predicate()).builtin != Builtin::kNone) {
      return false;
    }
    for (int i = 0; i < 2; ++i) {
      if (f->child(i) != nullptr && !clean(f->child(i))) return false;
    }
    return true;
  };
  EXPECT_TRUE(clean(tilde_.phi_tilde));
  EXPECT_TRUE(clean(tilde_.w1));
  EXPECT_TRUE(clean(tilde_.w2));
  EXPECT_TRUE(clean(tilde_.w3));
  EXPECT_TRUE(clean(tilde_.phi_w));
}

TEST_F(PhiTildeTest, WAxiomClassification) {
  fotl::Classification w1 = fotl::Classify(tilde_.w1);
  EXPECT_TRUE(w1.universal);
  fotl::Classification w3 = fotl::Classify(tilde_.w3);
  EXPECT_TRUE(w3.universal);
  fotl::Classification w2 = fotl::Classify(tilde_.w2);
  EXPECT_TRUE(w2.biquantified);
  EXPECT_EQ(w2.num_internal_quantifiers, 1u);
}

TEST_F(PhiTildeTest, WAxiomsOnConcreteLassos) {
  // A lasso where W(0) holds in every state: W1 holds (one element per state)
  // but W3 fails (W recurs for element 0).
  DatabaseState s(enc_.vocabulary());
  ASSERT_TRUE(s.Insert(enc_.w_pred(), {0}).ok());
  UltimatelyPeriodicDb db(enc_.vocabulary(), {}, {}, {s});
  auto w1 = fotl::EvaluateFuture(db, tilde_.w1);
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();
  EXPECT_TRUE(*w1);
  auto w2 = fotl::EvaluateFuture(db, tilde_.w2);
  ASSERT_TRUE(w2.ok());
  EXPECT_TRUE(*w2);
  auto w3 = fotl::EvaluateFuture(db, tilde_.w3);
  ASSERT_TRUE(w3.ok());
  EXPECT_FALSE(*w3);

  // Two W-elements in one state: W1 fails.
  DatabaseState s2(enc_.vocabulary());
  ASSERT_TRUE(s2.Insert(enc_.w_pred(), {0}).ok());
  ASSERT_TRUE(s2.Insert(enc_.w_pred(), {1}).ok());
  UltimatelyPeriodicDb db2(enc_.vocabulary(), {}, {}, {s2});
  auto w1b = fotl::EvaluateFuture(db2, tilde_.w1);
  ASSERT_TRUE(w1b.ok());
  EXPECT_FALSE(*w1b);

  // No W at all: W2 fails.
  DatabaseState s3(enc_.vocabulary());
  UltimatelyPeriodicDb db3(enc_.vocabulary(), {}, {}, {s3});
  auto w2c = fotl::EvaluateFuture(db3, tilde_.w2);
  ASSERT_TRUE(w2c.ok());
  EXPECT_FALSE(*w2c);
}

TEST_F(PhiTildeTest, MonadicVocabularyOnly) {
  // Every non-builtin predicate mentioned by phi-tilde is monadic — the
  // Theorem 3.2 statement ("only monadic predicate symbols of the database
  // vocabulary").
  const Vocabulary& v = *enc_.vocabulary();
  std::function<bool(fotl::Formula)> monadic = [&](fotl::Formula f) {
    if (f->kind() == fotl::NodeKind::kAtom && v.predicate(f->predicate()).arity != 1) {
      return false;
    }
    for (int i = 0; i < 2; ++i) {
      if (f->child(i) != nullptr && !monadic(f->child(i))) return false;
    }
    return true;
  };
  EXPECT_TRUE(monadic(tilde_.phi_tilde));
}

}  // namespace
}  // namespace tm
}  // namespace tic
