// Tests for the common layer: Status, Result, StringInterner, hashing.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/interner.h"
#include "common/result.h"
#include "common/status.h"

namespace tic {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllFactories) {
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto f = [](bool fail) -> Status {
    TIC_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
    return Status::NotFound("outer");
  };
  EXPECT_TRUE(f(true).IsInternal());
  EXPECT_TRUE(f(false).IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    TIC_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(InternerTest, AssignsDenseIds) {
  StringInterner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.Name(1), "b");
}

TEST(InternerTest, LookupDoesNotIntern) {
  StringInterner in;
  SymbolId id = 0;
  EXPECT_FALSE(in.Lookup("ghost", &id));
  EXPECT_EQ(in.size(), 0u);
  in.Intern("ghost");
  EXPECT_TRUE(in.Lookup("ghost", &id));
  EXPECT_EQ(id, 0u);
}

TEST(InternerTest, ManySymbolsStayStable) {
  StringInterner in;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.Intern("sym" + std::to_string(i)), static_cast<SymbolId>(i));
  }
  EXPECT_EQ(in.Name(437), "sym437");
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&a, 2);
  HashCombine(&b, 2);
  HashCombine(&b, 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, HashAllMatchesManualCombine) {
  size_t manual = 0;
  HashCombine(&manual, std::hash<int>{}(3));
  HashCombine(&manual, std::hash<int>{}(9));
  EXPECT_EQ(manual, HashAll(3, 9));
}

}  // namespace
}  // namespace tic
