// Tests for the compile-once transition system: per-letter verdict agreement
// with the progression + CheckSat reference (Lemma 4.2 two-phase procedure),
// lazy-safe vs eager-general liveness, transition memoization, and the
// renaming-invariant AutomatonCache sharing.

#include "ptl/transition_system.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ptl/formula.h"
#include "ptl/nnf.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

// Deterministic splitmix64 — tests must not depend on seeding.
uint64_t Mix(uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class TransitionSystemTest : public ::testing::Test {
 protected:
  TransitionSystemTest()
      : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_ = vocab_->Intern("p");
    q_ = vocab_->Intern("q");
    r_ = vocab_->Intern("r");
  }

  // Reference verdict: progress `f` through the word and CheckSat the
  // residual after each letter.
  std::vector<bool> ReferenceVerdicts(Formula f, const Word& w) {
    std::vector<bool> out;
    Formula residual = f;
    for (const PropState& st : w) {
      auto prog = Progress(&fac_, residual, st);
      EXPECT_TRUE(prog.ok()) << prog.status().message();
      residual = *prog;
      auto sat = CheckSat(&fac_, residual);
      EXPECT_TRUE(sat.ok()) << sat.status().message();
      out.push_back(sat->satisfiable);
    }
    return out;
  }

  // Automaton verdict for the same word.
  std::vector<bool> AutomatonVerdicts(Formula f, const Word& w) {
    auto ts = TransitionSystem::Compile(&fac_, f);
    EXPECT_TRUE(ts.ok()) << ts.status().message();
    std::vector<bool> out;
    uint32_t set = (*ts)->initial();
    for (const PropState& st : w) {
      auto step = (*ts)->Step(set, st);
      EXPECT_TRUE(step.ok()) << step.status().message();
      set = step->next;
      out.push_back(step->live);
    }
    return out;
  }

  void ExpectAgreement(Formula f, const Word& w) {
    EXPECT_EQ(AutomatonVerdicts(f, w), ReferenceVerdicts(f, w))
        << "formula: " << ToString(fac_, f);
  }

  PropState S(std::initializer_list<PropId> trues) {
    PropState st;
    for (PropId x : trues) st.Set(x, true);
    return st;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  PropId p_, q_, r_;
};

TEST_F(TransitionSystemTest, SafeFormulaMatchesProgressionPerLetter) {
  // G(p -> X q): violated exactly when some p-state is not followed by q.
  Formula f = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  auto ts = TransitionSystem::Compile(&fac_, f);
  ASSERT_TRUE(ts.ok());
  EXPECT_TRUE((*ts)->safe());

  Word ok = {S({p_}), S({q_, p_}), S({q_}), S({})};
  ExpectAgreement(f, ok);

  Word bad = {S({p_}), S({})};  // p then no q: dead forever
  ExpectAgreement(f, bad);

  // Once dead, every extension stays dead.
  Word bad_long = {S({p_}), S({}), S({q_}), S({p_, q_})};
  auto verdicts = AutomatonVerdicts(f, bad_long);
  EXPECT_FALSE(verdicts[1]);
  EXPECT_FALSE(verdicts[2]);
  EXPECT_FALSE(verdicts[3]);
}

TEST_F(TransitionSystemTest, NonSafeFormulaUsesEagerLiveness) {
  // p U q is not safe: liveness needs the self-fulfilling-SCC analysis.
  Formula f = fac_.Until(fac_.Atom(p_), fac_.Atom(q_));
  auto ts = TransitionSystem::Compile(&fac_, f);
  ASSERT_TRUE(ts.ok());
  EXPECT_FALSE((*ts)->safe());

  ExpectAgreement(f, {S({p_}), S({p_}), S({q_})});
  ExpectAgreement(f, {S({p_}), S({}), S({q_})});  // drops p before q: dead
  ExpectAgreement(f, {S({q_})});

  // G F p: pure liveness — every finite prefix stays potentially satisfied.
  Formula gf = fac_.Always(fac_.Eventually(fac_.Atom(p_)));
  ExpectAgreement(gf, {S({}), S({}), S({p_}), S({})});
}

TEST_F(TransitionSystemTest, LiveOfInitialDecidesTheFormula) {
  Formula sat = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  auto ts = TransitionSystem::Compile(&fac_, sat);
  ASSERT_TRUE(ts.ok());
  auto live = (*ts)->Live((*ts)->initial());
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE(*live);

  Formula unsat = fac_.And(fac_.Atom(p_), fac_.Not(fac_.Atom(p_)));
  auto ts2 = TransitionSystem::Compile(&fac_, unsat);
  ASSERT_TRUE(ts2.ok());
  auto live2 = (*ts2)->Live((*ts2)->initial());
  ASSERT_TRUE(live2.ok());
  EXPECT_FALSE(*live2);
}

TEST_F(TransitionSystemTest, AnySurvivorTracksResidualFalse) {
  // !p on the very first letter: asserting p kills every state immediately.
  Formula f = fac_.Not(fac_.Atom(p_));
  auto ts = TransitionSystem::Compile(&fac_, f);
  ASSERT_TRUE(ts.ok());
  auto step = (*ts)->Step((*ts)->initial(), S({p_}));
  ASSERT_TRUE(step.ok());
  EXPECT_FALSE(step->any_survivor);
  EXPECT_FALSE(step->live);

  auto step2 = (*ts)->Step((*ts)->initial(), S({}));
  ASSERT_TRUE(step2.ok());
  EXPECT_TRUE(step2->any_survivor);
  EXPECT_TRUE(step2->live);
}

TEST_F(TransitionSystemTest, TransitionsAreMemoized) {
  Formula f = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  auto ts = TransitionSystem::Compile(&fac_, f);
  ASSERT_TRUE(ts.ok());
  uint32_t set = (*ts)->initial();
  PropState letter = S({q_});
  // Steady state: q-only letters loop on one state-set.
  for (int i = 0; i < 10; ++i) {
    auto step = (*ts)->Step(set, letter);
    ASSERT_TRUE(step.ok());
    set = step->next;
  }
  TransitionSystemStats stats = (*ts)->stats();
  EXPECT_EQ(stats.steps, 10u);
  EXPECT_GE(stats.memo_hits, 8u);  // at most first two (set, sig) pairs miss
  EXPECT_LE(stats.num_state_sets, 4u);
}

TEST_F(TransitionSystemTest, RandomizedAgreementSweep) {
  std::vector<Formula> pool = {
      fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_)))),
      fac_.Always(fac_.Or(fac_.Not(fac_.Atom(p_)), fac_.Next(fac_.Atom(q_)))),
      fac_.And(fac_.Atom(p_), fac_.Always(fac_.Not(fac_.And(fac_.Atom(q_), fac_.Atom(r_))))),
      fac_.Until(fac_.Atom(p_), fac_.And(fac_.Atom(q_), fac_.Next(fac_.Atom(r_)))),
      fac_.Eventually(fac_.Always(fac_.Atom(p_))),
      fac_.Release(fac_.Atom(p_), fac_.Atom(q_)),
      fac_.Next(fac_.Next(fac_.Or(fac_.Atom(p_), fac_.Not(fac_.Atom(q_))))),
      fac_.Always(fac_.Implies(fac_.Atom(p_),
                               fac_.Next(fac_.Implies(fac_.Atom(q_), fac_.Next(fac_.Atom(r_)))))),
  };
  uint64_t rng = 42;
  std::vector<PropId> atoms = {p_, q_, r_};
  for (const Formula& f : pool) {
    for (int rep = 0; rep < 8; ++rep) {
      Word w;
      size_t len = 1 + Mix(rng) % 6;
      for (size_t t = 0; t < len; ++t) {
        PropState st;
        for (PropId a : atoms) {
          if (Mix(rng) & 1) st.Set(a, true);
        }
        w.push_back(st);
      }
      ExpectAgreement(f, w);
    }
  }
}

TEST_F(TransitionSystemTest, CacheSharesAcrossLetterRenamings) {
  AutomatonCache cache(8);
  Formula a = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  Formula b = fac_.Always(fac_.Implies(fac_.Atom(q_), fac_.Next(fac_.Atom(r_))));
  auto ha = cache.Get(&fac_, a);
  auto hb = cache.Get(&fac_, b);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(ha->ts.get(), hb->ts.get()) << "renamings must share one automaton";
  AutomatonCacheStats cs = cache.stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.entries, 1u);

  // The shared system answers each formula through its own letter mapping:
  // `b` is violated by q-then-not-r, which must not involve p at all.
  uint32_t set = hb->ts->initial();
  auto s1 = hb->ts->Step(set, S({q_}), hb->letters);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE(s1->live);
  auto s2 = hb->ts->Step(s1->next, S({p_}), hb->letters);  // p is noise for b
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE(s2->live);

  // And `a` still sees its own letters on the same shared automaton.
  set = ha->ts->initial();
  auto t1 = ha->ts->Step(set, S({p_}), ha->letters);
  ASSERT_TRUE(t1.ok());
  auto t2 = ha->ts->Step(t1->next, S({q_}), ha->letters);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->live);
}

// The per-check grounding pattern: a system compiled through a short-lived
// factory goes into the cache, the factory dies, and a later hit (through a
// different factory and letter renaming) lazily expands the cached system —
// which dereferences closure nodes owned by the compiling factory. The
// shared_ptr Get overload pins that factory; without the pin this is a
// use-after-free (historically an out_of_range in GrowStateMeta, or a crash).
TEST_F(TransitionSystemTest, CachePinsShortLivedCompilingFactory) {
  AutomatonCache cache(8);
  {
    auto vocab1 = std::make_shared<PropVocabulary>();
    auto fac1 = std::make_shared<Factory>(vocab1);
    PropId a = vocab1->Intern("a");
    PropId b = vocab1->Intern("b");
    Formula f1 = fac1->Always(fac1->Implies(fac1->Atom(a), fac1->Next(fac1->Atom(b))));
    ASSERT_TRUE(cache.Get(fac1, f1).ok());
    // fac1 (and with it every node the cached closure references) dies here
    // unless the cache pinned it.
  }
  Formula f2 = fac_.Always(fac_.Implies(fac_.Atom(p_), fac_.Next(fac_.Atom(q_))));
  auto h = cache.Get(&fac_, f2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(cache.stats().hits, 1u) << "renaming must hit the cached system";
  // Lazy expansion across several fresh states exercises GrowStateMeta on the
  // shared (safe-mode) system.
  uint32_t set = h->ts->initial();
  auto s1 = h->ts->Step(set, S({p_}), h->letters);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE(s1->live);
  auto s2 = h->ts->Step(s1->next, S({p_, q_}), h->letters);
  ASSERT_TRUE(s2.ok());
  EXPECT_TRUE(s2->live);
  auto s3 = h->ts->Step(s2->next, S({}), h->letters);
  ASSERT_TRUE(s3.ok());
  EXPECT_FALSE(s3->live) << "p-then-not-q violates f2";
}

TEST_F(TransitionSystemTest, CacheEvictsLeastRecentlyUsed) {
  AutomatonCache cache(2);
  Formula f1 = fac_.Atom(p_);
  Formula f2 = fac_.And(fac_.Atom(p_), fac_.Atom(q_));
  Formula f3 = fac_.Or(fac_.Atom(p_), fac_.Atom(q_));
  ASSERT_TRUE(cache.Get(&fac_, f1).ok());
  ASSERT_TRUE(cache.Get(&fac_, f2).ok());
  ASSERT_TRUE(cache.Get(&fac_, f3).ok());  // evicts f1
  AutomatonCacheStats cs = cache.stats();
  EXPECT_EQ(cs.evictions, 1u);
  EXPECT_EQ(cs.entries, 2u);
  ASSERT_TRUE(cache.Get(&fac_, f1).ok());  // miss again
  EXPECT_EQ(cache.stats().misses, 4u);
}

}  // namespace
}  // namespace ptl
}  // namespace tic
