// Classification tests for the paper's formula hierarchy (Section 2):
// biquantified, universal, internal quantifier counting, and the shapes used
// by Propositions 2.1 and 3.1.

#include <gtest/gtest.h>

#include "fotl/classify.h"
#include "fotl/parser.h"

namespace tic {
namespace fotl {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() {
    auto vocab = std::make_shared<Vocabulary>();
    EXPECT_TRUE(vocab->AddPredicate("p", 1).ok());
    EXPECT_TRUE(vocab->AddPredicate("q", 1).ok());
    EXPECT_TRUE(vocab->AddPredicate("r", 2).ok());
    vocab_ = vocab;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
  }

  Classification Of(const std::string& text) {
    auto res = Parse(fac_.get(), text);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return Classify(*res);
  }

  VocabularyPtr vocab_;
  std::unique_ptr<FormulaFactory> fac_;
};

TEST_F(ClassifyTest, PureFirstOrder) {
  Classification c = Of("forall x . p(x) -> q(x)");
  EXPECT_TRUE(c.pure_first_order);
  EXPECT_TRUE(c.closed);
  EXPECT_TRUE(c.biquantified);
  EXPECT_TRUE(c.universal);
  EXPECT_EQ(c.external_universals.size(), 1u);
  EXPECT_EQ(c.num_internal_quantifiers, 0u);
}

TEST_F(ClassifyTest, PaperSubmitOnceIsUniversal) {
  Classification c = Of("forall x . p(x) -> X G !p(x)");
  EXPECT_TRUE(c.biquantified);
  EXPECT_TRUE(c.universal);
  EXPECT_TRUE(c.future_only);
  EXPECT_FALSE(c.pure_first_order);
}

TEST_F(ClassifyTest, PaperFifoIsUniversal) {
  Classification c = Of(
      "forall x y . !(x != y & p(x) & ((!q(x)) until "
      "(p(y) & ((!q(x)) until (q(y) & !q(x))))))");
  EXPECT_TRUE(c.universal);
  EXPECT_EQ(c.external_universals.size(), 2u);
}

TEST_F(ClassifyTest, InternalExistentialMakesItSigma1) {
  // forall x . G (p(x) -> exists y . r(x, y)): one internal quantifier, pure
  // FO inside, so forall tense(Sigma_1) — the undecidable fragment.
  Classification c = Of("forall x . G (p(x) -> exists y . r(x, y))");
  EXPECT_TRUE(c.biquantified);
  EXPECT_FALSE(c.universal);
  EXPECT_EQ(c.num_internal_quantifiers, 1u);
  EXPECT_TRUE(c.internal_blocks_prenex1);
}

TEST_F(ClassifyTest, InternalUniversalCountsToo) {
  Classification c = Of("forall x . G (forall y . r(x, y) -> p(x))");
  EXPECT_TRUE(c.biquantified);
  EXPECT_FALSE(c.universal);
  EXPECT_EQ(c.num_internal_quantifiers, 1u);
}

TEST_F(ClassifyTest, TemporalInsideQuantifierBreaksBiquantification) {
  // exists y inside G with a temporal operator in its scope.
  Classification c = Of("forall x . G (exists y . F r(x, y))");
  EXPECT_FALSE(c.biquantified);
  EXPECT_FALSE(c.universal);
}

TEST_F(ClassifyTest, PastOperatorsBreakBiquantification) {
  Classification c = Of("forall x . G (p(x) -> O q(x))");
  EXPECT_FALSE(c.future_only);
  EXPECT_FALSE(c.biquantified);
}

TEST_F(ClassifyTest, LeadingExistentialIsNotUniversalPrefix) {
  Classification c = Of("exists x . G p(x)");
  EXPECT_TRUE(c.external_universals.empty());
  EXPECT_FALSE(c.universal);  // the internal quantifier is the exists itself
  EXPECT_EQ(c.num_internal_quantifiers, 1u);
}

TEST_F(ClassifyTest, AlternatingPrefixSplitsAtFirstExistential) {
  Classification c = Of("forall x . exists y . G r(x, y)");
  EXPECT_EQ(c.external_universals.size(), 1u);
  EXPECT_EQ(c.num_internal_quantifiers, 1u);
}

TEST_F(ClassifyTest, NestedInternalBlockNotPrenex1) {
  // Internal block exists y . (p(y) & forall z' . r(y, z')): two quantifiers,
  // mixed, not a single prenex block.
  Classification c =
      Of("forall x . G (exists y . p(y) & (forall w . r(y, w)))");
  EXPECT_TRUE(c.biquantified);
  EXPECT_EQ(c.num_internal_quantifiers, 2u);
  EXPECT_FALSE(c.internal_blocks_prenex1);
}

TEST_F(ClassifyTest, AlwaysPastShape) {
  Classification c = Of("G (p(x) -> O q(x))");
  EXPECT_TRUE(c.is_always_past);
  Classification c2 = Of("G (p(x) -> F q(x))");
  EXPECT_FALSE(c2.is_always_past);
  Classification c3 = Of("G (Y p(x) since q(x))");
  EXPECT_TRUE(c3.is_always_past);
}

TEST_F(ClassifyTest, PastOnlyFlag) {
  Classification c = Of("H p(x) & (p(x) since q(x))");
  EXPECT_TRUE(c.past_only);
  EXPECT_FALSE(c.future_only);
}

TEST_F(ClassifyTest, StripUniversalPrefix) {
  auto res = Parse(fac_.get(), "forall x y . r(x, y)");
  ASSERT_TRUE(res.ok());
  std::vector<VarId> vars;
  Formula body = nullptr;
  StripUniversalPrefix(*res, &vars, &body);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_EQ(body->kind(), NodeKind::kAtom);
}

TEST_F(ClassifyTest, FreeVariablesBlockClosedness) {
  Classification c = Of("p(x) -> X G !p(x)");
  EXPECT_FALSE(c.closed);
  EXPECT_TRUE(c.biquantified);  // k = 0 external quantifiers is allowed
  EXPECT_TRUE(c.universal);
}

}  // namespace
}  // namespace fotl
}  // namespace tic
