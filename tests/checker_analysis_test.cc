// Tests for the constraint analyzer: fragment classification + engine
// recommendation — the practical summary of the paper's decidability map.

#include <gtest/gtest.h>

#include "checker/analysis.h"
#include "fotl/parser.h"
#include "tm/formulas.h"

namespace tic {
namespace checker {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    rel_ = *v->AddPredicate("Rel", 2);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  ConstraintReport Analyze(const std::string& text) {
    auto f = fotl::Parse(fac_.get(), text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return AnalyzeConstraint(*fac_, *f);
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_, rel_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_F(AnalysisTest, UniversalSafety) {
  ConstraintReport r = Analyze("forall x . G (Sub(x) -> X G !Sub(x))");
  EXPECT_EQ(r.checkability, Checkability::kUniversalSafety);
  EXPECT_TRUE(r.syntactically_safe);
  EXPECT_TRUE(r.classification.universal);
  EXPECT_NE(r.explanation.find("Theorem 4.2"), std::string::npos);
}

TEST_F(AnalysisTest, UniversalNonSafety) {
  ConstraintReport r = Analyze("forall x . G (Sub(x) -> F Fill(x))");
  EXPECT_EQ(r.checkability, Checkability::kUniversalNonSafety);
  EXPECT_FALSE(r.syntactically_safe);
  EXPECT_TRUE(r.classification.universal);
}

TEST_F(AnalysisTest, UndecidableFragment) {
  ConstraintReport r = Analyze("forall x . G (Sub(x) -> (exists y . Rel(x, y)))");
  EXPECT_EQ(r.checkability, Checkability::kUndecidableFragment);
  EXPECT_EQ(r.classification.num_internal_quantifiers, 1u);
  EXPECT_NE(r.explanation.find("Sigma^0_2"), std::string::npos);
}

TEST_F(AnalysisTest, PastAlways) {
  ConstraintReport r = Analyze("G ((exists x . Fill(x)) -> (exists y . O Sub(y)))");
  EXPECT_EQ(r.checkability, Checkability::kPastAlways);
  EXPECT_TRUE(r.classification.is_always_past);
}

TEST_F(AnalysisTest, Unsupported) {
  // Mixed tenses outside G-past shape.
  ConstraintReport r = Analyze("forall x . (O Sub(x)) -> F Fill(x)");
  EXPECT_EQ(r.checkability, Checkability::kUnsupported);
  // Existential prefix with a temporal operator in its scope: the quantifier
  // is not internal (its scope is temporal) and not an external universal, so
  // the formula is not biquantified at all.
  ConstraintReport r2 = Analyze("exists x . G Sub(x)");
  EXPECT_EQ(r2.checkability, Checkability::kUnsupported);
  // Temporal operator inside a quantifier.
  ConstraintReport r3 = Analyze("forall x . exists y . F Rel(x, y)");
  EXPECT_EQ(r3.checkability, Checkability::kUnsupported);
}

TEST_F(AnalysisTest, PaperFormulasClassifyAsExpected) {
  // The Section 3 phi-tilde lands in the undecidable fragment.
  tm::TuringMachine machine = *tm::MakeShuttleMachine();
  tm::TmEncoding enc = *tm::TmEncoding::Create(&machine, /*with_w=*/true);
  tm::TmTildeFormulas tilde = *tm::BuildPhiTilde(enc);
  ConstraintReport r = AnalyzeConstraint(*tilde.factory, tilde.phi_tilde);
  EXPECT_EQ(r.checkability, Checkability::kUndecidableFragment);

  // Its W1 conjunct alone is universal safety.
  ConstraintReport rw1 = AnalyzeConstraint(*tilde.factory, tilde.w1);
  EXPECT_EQ(rw1.checkability, Checkability::kUniversalSafety);
}

TEST_F(AnalysisTest, NamesAreStable) {
  EXPECT_STREQ(CheckabilityToString(Checkability::kUniversalSafety),
               "universal-safety (Theorem 4.2)");
  EXPECT_STREQ(CheckabilityToString(Checkability::kUndecidableFragment),
               "undecidable fragment (Theorem 3.2)");
}

}  // namespace
}  // namespace checker
}  // namespace tic
