// Property tests for the Theorem 4.2 pipeline against a brute-force oracle:
// on tiny vocabularies we can enumerate EVERY ultimately periodic extension
// (prefix <= P, loop <= L, states over subsets of the relevant tuples) and
// decide potential satisfaction exhaustively. The checker must agree exactly:
// sound (YES => witness verifies) and complete (oracle-YES => checker-YES)
// over the enumerated space — plus literal/simplified grounding agreement and
// monitor/batch agreement on random update streams.
//
// Random histories and streams come from the shared src/testing/ generators
// (seed mode reproduces the historical draw sequences); the brute-force
// enumeration oracle stays local because it is this suite's independent
// ground truth, deliberately not shared with the code under test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/extension.h"
#include "fotl/evaluator.h"
#include "fotl/parser.h"
#include "testing/generators.h"
#include "testing/oracles.h"

namespace tic {
namespace checker {
namespace {

namespace tt = tic::testing;

class OracleTest : public ::testing::TestWithParam<int> {
 protected:
  OracleTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 1);
    q_ = *v->AddPredicate("q", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  // All database states whose tuples are subsets of {p(1), p(2), q(1), q(2)}.
  std::vector<DatabaseState> AllStates() {
    std::vector<DatabaseState> out;
    for (int mask = 0; mask < 16; ++mask) {
      DatabaseState s(vocab_);
      if (mask & 1) (void)s.Insert(p_, {1});
      if (mask & 2) (void)s.Insert(p_, {2});
      if (mask & 4) (void)s.Insert(q_, {1});
      if (mask & 8) (void)s.Insert(q_, {2});
      out.push_back(std::move(s));
    }
    return out;
  }

  // Brute-force oracle: does `history` extend to a model of `phi` among all
  // lassos (history + extension-prefix <= 2 + loop <= 2) over AllStates()?
  // Complete for the constraints below: they are safety formulas whose
  // satisfying evolutions, when one exists, can always be completed with
  // the right 1-2 state pattern (we also add the all-empty loop).
  bool OracleExtendable(const History& history, fotl::Formula phi) {
    std::vector<DatabaseState> all = AllStates();
    std::vector<DatabaseState> base;
    for (size_t t = 0; t < history.length(); ++t) base.push_back(history.state(t));

    // Enumerate extension shapes: extra prefix states 0..2, loop length 1..2.
    for (int extra = 0; extra <= 2; ++extra) {
      std::vector<size_t> pidx(static_cast<size_t>(extra), 0);
      while (true) {
        for (int loop_len = 1; loop_len <= 2; ++loop_len) {
          std::vector<size_t> lidx(static_cast<size_t>(loop_len), 0);
          while (true) {
            std::vector<DatabaseState> prefix = base;
            for (size_t i : pidx) prefix.push_back(all[i]);
            std::vector<DatabaseState> loop;
            for (size_t i : lidx) loop.push_back(all[i]);
            UltimatelyPeriodicDb db(vocab_, {}, prefix, loop);
            auto holds = fotl::EvaluateFuture(db, phi);
            EXPECT_TRUE(holds.ok()) << holds.status().ToString();
            if (holds.ok() && *holds) return true;

            size_t d = 0;
            while (d < lidx.size() && ++lidx[d] == all.size()) {
              lidx[d] = 0;
              ++d;
            }
            if (d == lidx.size()) break;
          }
        }
        size_t d = 0;
        while (d < pidx.size() && ++pidx[d] == all.size()) {
          pidx[d] = 0;
          ++d;
        }
        if (d == pidx.size()) break;
      }
    }
    return false;
  }

  VocabularyPtr vocab_;
  PredicateId p_, q_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_P(OracleTest, CheckerMatchesBruteForce) {
  tt::Entropy ent(static_cast<uint32_t>(7000 + GetParam()));
  std::vector<std::string> constraints = {
      "forall x . G (p(x) -> X G !p(x))",
      "forall x . G (p(x) -> X q(x))",
      "forall x . G !(p(x) & q(x))",
      "forall x . G (q(x) -> p(x) | X p(x))",
  };
  const std::string& text = constraints[GetParam() % constraints.size()];
  auto phi = fotl::Parse(fac_.get(), text);
  ASSERT_TRUE(phi.ok());

  // Random history of 1..3 states over elements {1, 2}: each of p(1), p(2),
  // q(1), q(2) present independently with probability 1/2 (same draw order as
  // the historical inline loop).
  History h = *History::Create(vocab_);
  size_t len = 1 + ent.Below(3);
  for (size_t t = 0; t < len; ++t) {
    tt::AppendRandomState(&ent, &h, {p_, q_}, {1, 2});
  }

  auto res = CheckPotentialSatisfaction(*fac_, *phi, h);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  bool oracle = OracleExtendable(h, *phi);
  EXPECT_EQ(res->potentially_satisfied, oracle) << text << " len=" << len;

  // Soundness side: the checker's own witness must verify.
  if (res->potentially_satisfied) {
    ASSERT_TRUE(res->witness.has_value());
    auto holds = fotl::EvaluateFuture(*res->witness, *phi);
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range(0, 24));

class GroundingAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(GroundingAgreementTest, LiteralAndSimplifiedAgreeOnRandomHistories) {
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId p = *vocab->AddPredicate("p", 1);
  PredicateId q = *vocab->AddPredicate("q", 1);
  auto fac = std::make_shared<fotl::FormulaFactory>(vocab);
  std::vector<std::string> constraints = {
      "forall x . G (p(x) -> X G !p(x))",
      "forall x . G (p(x) -> X q(x))",
      "forall x y . G ((p(x) & p(y)) -> x = y)",
  };
  tt::Entropy ent(static_cast<uint32_t>(9000 + GetParam()));
  auto phi = fotl::Parse(fac.get(), constraints[GetParam() % constraints.size()]);
  ASSERT_TRUE(phi.ok());

  // Random history over all four tuples (the shared state distribution — a
  // superset of the historical p-biased one, same seeds and case count).
  History h = *History::Create(vocab);
  size_t len = 1 + ent.Below(3);
  for (size_t t = 0; t < len; ++t) {
    tt::AppendRandomState(&ent, &h, {p, q}, {1, 2});
  }

  CheckOptions lit;
  lit.grounding.mode = GroundingMode::kLiteral;
  auto a = CheckPotentialSatisfaction(*fac, *phi, h);
  auto b = CheckPotentialSatisfaction(*fac, *phi, h, {}, lit);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->potentially_satisfied, b->potentially_satisfied);
  EXPECT_EQ(a->permanently_violated, b->permanently_violated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundingAgreementTest, ::testing::Range(0, 18));

class MonitorAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MonitorAgreementTest, MonitorMatchesBatchWithDeletes) {
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId p = *vocab->AddPredicate("p", 1);
  PredicateId q = *vocab->AddPredicate("q", 1);
  auto fac = std::make_shared<fotl::FormulaFactory>(vocab);
  auto phi = fotl::Parse(fac.get(), "forall x . G (p(x) -> X q(x))");
  ASSERT_TRUE(phi.ok());

  // 7 single-op transactions over {1,2,3} (SingleOpTxn reproduces the
  // historical element-then-op draw order), run through the shared
  // monitor-vs-batch oracle.
  tt::Entropy ent(static_cast<uint32_t>(4200 + GetParam()));
  std::vector<Transaction> stream;
  for (int step = 0; step < 7; ++step) {
    stream.push_back(tt::SingleOpTxn(&ent, {p, q}, {1, 2, 3}));
  }
  tt::FotlCase kase;
  kase.vocab = vocab;
  kase.factory = fac;
  kase.preds = {p, q};
  kase.num_vars = 1;
  kase.sentence = *phi;
  kase.stream = std::move(stream);

  auto r = tt::MonitorMatchesBatch(kase);
  ASSERT_TRUE(r.ok()) << "seed " << GetParam() << ": " << r.status().ToString();
  EXPECT_TRUE(r->pass) << "seed " << GetParam() << ": " << r->detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorAgreementTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace checker
}  // namespace tic
