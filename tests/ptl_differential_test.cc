// Differential tests between the two tableau engines: on ~1k seeded random
// formulas (and deterministic big-closure families that force the bitset
// spill path), kLegacy and kBitset must agree on sat/unsat, and each engine's
// lasso witness must validate under the independent word evaluator. This is
// the verdict-invariance contract TableauEngine::kBitset ships under.
//
// Formula generation and the engine-equality oracle live in src/testing/
// (shared with the property suites and fuzz_ptl_parser); seed mode there
// reproduces the historical per-seed formulas bit for bit, so the seeds and
// case counts below cover exactly what they always covered. Set
// TIC_REPLAY_SEED=<n> to re-run a single seed from a failure message.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptl/formula.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"

namespace tic {
namespace ptl {
namespace {

namespace tt = tic::testing;

// Runs the shared engine-equality oracle on `f` and reports the full
// pretty-printed formula on any violation. Returns the shared verdict.
bool CheckBothEngines(Factory* fac, Formula f) {
  bool satisfiable = false;
  auto r = tt::TableauEnginesAgree(fac, f, &satisfiable);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nformula: "
                      << ToString(*fac, f);
  if (!r.ok()) return false;
  EXPECT_TRUE(r->pass) << r->detail;
  return satisfiable;
}

// 1000 seeded random formulas, depth 4 over 3 letters. Closures stay inside
// the 256-bit inline threshold; the spill path is covered by the
// deterministic families below.
TEST(DifferentialTableauTest, RandomFormulasAgreeAcrossEngines) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = tt::PtlAtoms(&fac, 3);
  auto replay = tt::ReplaySeedFromEnv();
  size_t sat_count = 0;
  for (int seed = 0; seed < 1000; ++seed) {
    if (replay && *replay != static_cast<uint64_t>(seed)) continue;
    tt::Entropy ent(static_cast<uint32_t>(seed));
    Formula f = tt::GeneratePtlFormula(&fac, &ent, atoms, 4);
    if (CheckBothEngines(&fac, f)) ++sat_count;
    if (::testing::Test::HasFailure()) {
      FAIL() << "failing seed " << seed << " (re-run with TIC_REPLAY_SEED="
             << seed << "); formula: " << ToString(fac, f);
    }
  }
  // Sanity: the sweep exercises both verdicts.
  if (!replay) {
    EXPECT_GT(sat_count, 100u);
    EXPECT_LT(sat_count, 1000u);
  }
}

// Deeper random formulas push some closures past 4 inline words.
TEST(DifferentialTableauTest, DeeperRandomFormulasAgreeAcrossEngines) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = tt::PtlAtoms(&fac, 6);
  auto replay = tt::ReplaySeedFromEnv();
  for (int seed = 0; seed < 120; ++seed) {
    if (replay && *replay != static_cast<uint64_t>(seed)) continue;
    tt::Entropy ent(static_cast<uint32_t>(50000 + seed));
    Formula f = tt::GeneratePtlFormula(&fac, &ent, atoms, 6);
    CheckBothEngines(&fac, f);
    if (::testing::Test::HasFailure()) {
      FAIL() << "failing seed " << seed << " (re-run with TIC_REPLAY_SEED="
             << seed << "); formula: " << ToString(fac, f);
    }
  }
}

class SpillDifferentialTest : public ::testing::Test {
 protected:
  SpillDifferentialTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {}

  Formula Letter(size_t i) {
    return fac_.Atom(vocab_->Intern("p" + std::to_string(i)));
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
};

// G(p_i -> X p_{i+1}) chain over 300 letters: the NNF closure holds each
// implication, its Or-expansion, the Next members and the G unfoldings —
// thousands of members, far past the 256-bit inline threshold, so every
// bitset state runs on the heap-spill representation. Satisfiable (the lazy
// safety DFS finds a lasso after walking the p_0..p_299 ripple); the unsat
// direction is covered by the conjunction family below — proving the pinned
// chain unsat would require exhausting an exponential state space in both
// engines.
TEST_F(SpillDifferentialTest, SafetyChainPastInlineThreshold) {
  constexpr size_t kLetters = 300;
  std::vector<Formula> conj = {Letter(0)};
  for (size_t i = 0; i + 1 < kLetters; ++i) {
    conj.push_back(
        fac_.Always(fac_.Implies(Letter(i), fac_.Next(Letter(i + 1)))));
  }
  EXPECT_TRUE(CheckBothEngines(&fac_, fac_.AndAll(conj)));
}

// G over a 300-letter conjunction: wide closure, no branching at all — the
// unsat flip is detected by a pure alpha clash on spilled bitsets.
TEST_F(SpillDifferentialTest, WideInvariantConjunction) {
  constexpr size_t kLetters = 300;
  std::vector<Formula> atoms;
  for (size_t i = 0; i < kLetters; ++i) atoms.push_back(Letter(i));
  Formula inv = fac_.Always(fac_.AndAll(atoms));
  EXPECT_TRUE(CheckBothEngines(&fac_, inv));
  EXPECT_FALSE(
      CheckBothEngines(&fac_, fac_.And(inv, fac_.Not(Letter(kLetters / 2)))));
}

// Right-nested Until chain 90 deep: the closure (~3 members per level) spills
// past the inline words, and the eventuality structure forces the *graph*
// search — spilled states flow through interning, Tarjan, the
// self-fulfilling-SCC scan and the witness builder. State count stays linear
// in the depth (each state tracks one suffix obligation).
TEST_F(SpillDifferentialTest, NestedUntilChainUsesGraphSearch) {
  constexpr size_t kDepth = 90;
  Formula f = Letter(kDepth);
  for (size_t i = kDepth; i-- > 0;) {
    f = fac_.Until(Letter(i), f);
  }
  EXPECT_TRUE(CheckBothEngines(&fac_, f));
  // The innermost goal letter can never arrive: every level's eventuality
  // chain dead-ends, so the formula flips unsat.
  EXPECT_FALSE(CheckBothEngines(
      &fac_, fac_.And(f, fac_.Always(fac_.Not(Letter(kDepth))))));
}

}  // namespace
}  // namespace ptl
}  // namespace tic
