// Differential tests between the two tableau engines: on ~1k seeded random
// formulas (and deterministic big-closure families that force the bitset
// spill path), kLegacy and kBitset must agree on sat/unsat, and each engine's
// lasso witness must validate under the independent word evaluator. This is
// the verdict-invariance contract TableauEngine::kBitset ships under.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ptl/formula.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

Formula RandomFormula(Factory* fac, std::mt19937* rng,
                      const std::vector<Formula>& atoms, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 9);
  switch (pick(*rng)) {
    case 0:
      return atoms[(*rng)() % atoms.size()];
    case 1:
      return fac->Not(atoms[(*rng)() % atoms.size()]);
    case 2:
      return fac->Not(RandomFormula(fac, rng, atoms, depth - 1));
    case 3:
      return fac->And(RandomFormula(fac, rng, atoms, depth - 1),
                      RandomFormula(fac, rng, atoms, depth - 1));
    case 4:
      return fac->Or(RandomFormula(fac, rng, atoms, depth - 1),
                     RandomFormula(fac, rng, atoms, depth - 1));
    case 5:
      return fac->Next(RandomFormula(fac, rng, atoms, depth - 1));
    case 6:
      return fac->Until(RandomFormula(fac, rng, atoms, depth - 1),
                        RandomFormula(fac, rng, atoms, depth - 1));
    case 7:
      return fac->Release(RandomFormula(fac, rng, atoms, depth - 1),
                          RandomFormula(fac, rng, atoms, depth - 1));
    case 8:
      return fac->Eventually(RandomFormula(fac, rng, atoms, depth - 1));
    default:
      return fac->Always(RandomFormula(fac, rng, atoms, depth - 1));
  }
}

// Runs both engines on `f` and enforces the invariance contract. Returns the
// shared verdict.
bool CheckBothEngines(Factory* fac, Formula f) {
  TableauOptions legacy;
  legacy.engine = TableauEngine::kLegacy;
  TableauOptions bitset;
  bitset.engine = TableauEngine::kBitset;

  auto rl = CheckSat(fac, f, legacy);
  auto rb = CheckSat(fac, f, bitset);
  EXPECT_TRUE(rl.ok()) << rl.status().ToString();
  EXPECT_TRUE(rb.ok()) << rb.status().ToString();
  if (!rl.ok() || !rb.ok()) return false;

  EXPECT_EQ(rl->satisfiable, rb->satisfiable)
      << "engines disagree on " << ToString(*fac, f);
  // The engines may pick different (state-order-dependent) witnesses; each
  // must independently satisfy the formula.
  if (rl->satisfiable) {
    auto holds = Evaluate(*rl->witness, f, 0);
    EXPECT_TRUE(holds.ok()) << holds.status().ToString();
    if (holds.ok()) {
      EXPECT_TRUE(*holds) << "legacy witness fails " << ToString(*fac, f);
    }
  }
  if (rb->satisfiable) {
    auto holds = Evaluate(*rb->witness, f, 0);
    EXPECT_TRUE(holds.ok()) << holds.status().ToString();
    if (holds.ok()) {
      EXPECT_TRUE(*holds) << "bitset witness fails " << ToString(*fac, f);
    }
  }
  return rb->satisfiable;
}

// 1000 seeded random formulas, depth 4 over 3 letters. Closures stay inside
// the 256-bit inline threshold; the spill path is covered by the
// deterministic families below.
TEST(DifferentialTableauTest, RandomFormulasAgreeAcrossEngines) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = {fac.Atom(vocab->Intern("a")),
                                fac.Atom(vocab->Intern("b")),
                                fac.Atom(vocab->Intern("c"))};
  size_t sat_count = 0;
  for (int seed = 0; seed < 1000; ++seed) {
    std::mt19937 rng(seed);
    Formula f = RandomFormula(&fac, &rng, atoms, 4);
    if (CheckBothEngines(&fac, f)) ++sat_count;
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "aborted at seed " << seed;
    }
  }
  // Sanity: the sweep exercises both verdicts.
  EXPECT_GT(sat_count, 100u);
  EXPECT_LT(sat_count, 1000u);
}

// Deeper random formulas push some closures past 4 inline words.
TEST(DifferentialTableauTest, DeeperRandomFormulasAgreeAcrossEngines) {
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms;
  for (int i = 0; i < 6; ++i) {
    atoms.push_back(fac.Atom(vocab->Intern(std::string(1, 'a' + i))));
  }
  for (int seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(50000 + seed);
    Formula f = RandomFormula(&fac, &rng, atoms, 6);
    CheckBothEngines(&fac, f);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "aborted at seed " << seed;
    }
  }
}

class SpillDifferentialTest : public ::testing::Test {
 protected:
  SpillDifferentialTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {}

  Formula Letter(size_t i) {
    return fac_.Atom(vocab_->Intern("p" + std::to_string(i)));
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
};

// G(p_i -> X p_{i+1}) chain over 300 letters: the NNF closure holds each
// implication, its Or-expansion, the Next members and the G unfoldings —
// thousands of members, far past the 256-bit inline threshold, so every
// bitset state runs on the heap-spill representation. Satisfiable (the lazy
// safety DFS finds a lasso after walking the p_0..p_299 ripple); the unsat
// direction is covered by the conjunction family below — proving the pinned
// chain unsat would require exhausting an exponential state space in both
// engines.
TEST_F(SpillDifferentialTest, SafetyChainPastInlineThreshold) {
  constexpr size_t kLetters = 300;
  std::vector<Formula> conj = {Letter(0)};
  for (size_t i = 0; i + 1 < kLetters; ++i) {
    conj.push_back(
        fac_.Always(fac_.Implies(Letter(i), fac_.Next(Letter(i + 1)))));
  }
  EXPECT_TRUE(CheckBothEngines(&fac_, fac_.AndAll(conj)));
}

// G over a 300-letter conjunction: wide closure, no branching at all — the
// unsat flip is detected by a pure alpha clash on spilled bitsets.
TEST_F(SpillDifferentialTest, WideInvariantConjunction) {
  constexpr size_t kLetters = 300;
  std::vector<Formula> atoms;
  for (size_t i = 0; i < kLetters; ++i) atoms.push_back(Letter(i));
  Formula inv = fac_.Always(fac_.AndAll(atoms));
  EXPECT_TRUE(CheckBothEngines(&fac_, inv));
  EXPECT_FALSE(
      CheckBothEngines(&fac_, fac_.And(inv, fac_.Not(Letter(kLetters / 2)))));
}

// Right-nested Until chain 90 deep: the closure (~3 members per level) spills
// past the inline words, and the eventuality structure forces the *graph*
// search — spilled states flow through interning, Tarjan, the
// self-fulfilling-SCC scan and the witness builder. State count stays linear
// in the depth (each state tracks one suffix obligation).
TEST_F(SpillDifferentialTest, NestedUntilChainUsesGraphSearch) {
  constexpr size_t kDepth = 90;
  Formula f = Letter(kDepth);
  for (size_t i = kDepth; i-- > 0;) {
    f = fac_.Until(Letter(i), f);
  }
  EXPECT_TRUE(CheckBothEngines(&fac_, f));
  // The innermost goal letter can never arrive: every level's eventuality
  // chain dead-ends, so the formula flips unsat.
  EXPECT_FALSE(CheckBothEngines(
      &fac_, fac_.And(f, fac_.Always(fac_.Not(Letter(kDepth))))));
}

}  // namespace
}  // namespace ptl
}  // namespace tic
