// Cross-module integration tests: monitor vs triggers vs past baseline on one
// update stream, witness replay, and the checker applied to the Section 3
// W-axioms on encoded Turing-machine computations.

#include <gtest/gtest.h>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "checker/trigger.h"
#include "fotl/parser.h"
#include "past/past_monitor.h"
#include "tm/encoding.h"
#include "tm/formulas.h"

namespace tic {
namespace {

class OrdersWorkflowTest : public ::testing::Test {
 protected:
  OrdersWorkflowTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
  }

  fotl::Formula Parse_(const std::string& s) { return *fotl::Parse(fac_.get(), s); }

  Transaction Txn(std::vector<Value> subs, std::vector<Value> fills,
                  std::vector<Value> unsubs = {}) {
    Transaction t;
    for (Value v : subs) t.push_back(UpdateOp::Insert(sub_, {v}));
    for (Value v : fills) t.push_back(UpdateOp::Insert(fill_, {v}));
    for (Value v : unsubs) t.push_back(UpdateOp::Delete(sub_, {v}));
    return t;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> fac_;
};

TEST_F(OrdersWorkflowTest, MonitorTriggerAndPastBaselineAgree) {
  // The same policy in three guises:
  //  - future universal constraint, monitored for potential satisfaction;
  //  - the dual trigger ("fire when a double submission is unavoidable");
  //  - the past formulation, monitored history-lessly.
  fotl::Formula future = Parse_("forall x . G (Sub(x) -> X G !Sub(x))");
  fotl::Formula trig_cond = Parse_("F (Sub(x) & X F Sub(x))");
  fotl::Formula past = Parse_("forall x . G (Sub(x) -> !(Y O Sub(x)))");

  auto monitor = *checker::Monitor::Create(fac_, future);
  auto triggers = *checker::TriggerManager::Create(fac_);
  ASSERT_TRUE(triggers->AddTrigger("dup", trig_cond).ok());
  auto past_monitor = *past::PastMonitor::Create(fac_, past);

  std::vector<Transaction> stream = {
      Txn({1}, {}),       // t0: submit 1
      Txn({2}, {}, {1}),  // t1: submit 2, retract 1
      Txn({}, {2}, {2}),  // t2: fill 2, retract it
      Txn({1}, {}),       // t3: resubmit 1 — violation!
      Txn({3}, {}, {1}),  // t4: violation is permanent
  };
  for (size_t t = 0; t < stream.size(); ++t) {
    auto mv = monitor->ApplyTransaction(stream[t]);
    ASSERT_TRUE(mv.ok()) << mv.status().ToString();
    auto firings = triggers->OnTransaction(stream[t]);
    ASSERT_TRUE(firings.ok()) << firings.status().ToString();
    auto pv = past_monitor->ApplyTransaction(stream[t]);
    ASSERT_TRUE(pv.ok()) << pv.status().ToString();

    bool violated_now = t >= 3;
    EXPECT_EQ(mv->permanently_violated, violated_now) << "t=" << t;
    EXPECT_EQ(!firings->empty(), violated_now) << "t=" << t;
    // The past monitor reports per-instant satisfaction; its first violation
    // must coincide with the monitor's first violation.
    if (t < 3) {
      EXPECT_TRUE(pv->satisfied);
      EXPECT_FALSE(pv->first_violation.has_value());
    } else {
      EXPECT_EQ(pv->first_violation, std::optional<size_t>(3));
    }
  }
  // The trigger names the culprit substitution.
  auto final_firings = triggers->EvaluateTriggers();
  ASSERT_TRUE(final_firings.ok());
  ASSERT_FALSE(final_firings->empty());
  fotl::VarId x = fac_->InternVar("x");
  EXPECT_EQ((*final_firings)[0].substitution.at(x), 1);
}

TEST_F(OrdersWorkflowTest, WitnessReplayStaysSatisfied) {
  // Take the checker's witness for a pending-FIFO history, extend the history
  // along the witness, and re-check at every prefix: potential satisfaction
  // must persist (the witness is a genuine model).
  fotl::Formula fifo = Parse_(
      "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
      "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  History h = *History::Create(vocab_);
  DatabaseState* s0 = h.AppendEmptyState();
  ASSERT_TRUE(s0->Insert(sub_, {1}).ok());
  DatabaseState* s1 = h.AppendEmptyState();
  ASSERT_TRUE(s1->Insert(sub_, {2}).ok());

  auto check = checker::CheckPotentialSatisfaction(*fac_, fifo, h);
  ASSERT_TRUE(check.ok());
  ASSERT_TRUE(check->potentially_satisfied);
  ASSERT_TRUE(check->witness.has_value());
  const UltimatelyPeriodicDb& w = *check->witness;

  for (size_t extend = h.length(); extend < w.prefix_length() + 2 * w.loop_length();
       ++extend) {
    History longer = *w.TakePrefix(extend + 1);
    auto re = checker::CheckPotentialSatisfaction(*fac_, fifo, longer);
    ASSERT_TRUE(re.ok()) << re.status().ToString();
    EXPECT_TRUE(re->potentially_satisfied) << "prefix length " << extend + 1;
  }
}

TEST_F(OrdersWorkflowTest, EagerBeatsLazyOnContradictoryObligations) {
  // A constraint whose violation the progression phase alone cannot see: a
  // submission demands both X Fill(x) and X !Fill(x). The residual after the
  // submission contains the contradictory pair as *next-state* obligations —
  // propositionally unsatisfiable, but not syntactically `false`. The eager
  // monitor (Theorem 4.2: satisfiability check per update) flags it at the
  // earliest time; the lazy Lipeck–Saake-style monitor only notices one state
  // later, when progression assigns Fill a truth value — Section 5's "weaker
  // notion ... violations are always detected but not necessarily at the
  // earliest possible time".
  fotl::Formula contradictory =
      Parse_("forall x . G (Sub(x) -> (X Fill(x)) & (X !Fill(x)))");
  auto eager = *checker::Monitor::Create(fac_, contradictory, {}, {},
                                         checker::MonitorMode::kEager);
  auto lazy = *checker::Monitor::Create(fac_, contradictory, {}, {},
                                        checker::MonitorMode::kLazy);

  auto ve0 = *eager->ApplyTransaction(Txn({1}, {}));
  auto vl0 = *lazy->ApplyTransaction(Txn({1}, {}));
  EXPECT_FALSE(ve0.potentially_satisfied);  // eager: earliest detection
  EXPECT_TRUE(vl0.potentially_satisfied);   // lazy: still hopeful
  EXPECT_FALSE(vl0.permanently_violated);

  auto ve1 = *eager->ApplyTransaction(Txn({}, {}, {1}));
  auto vl1 = *lazy->ApplyTransaction(Txn({}, {}, {1}));
  EXPECT_TRUE(ve1.permanently_violated);
  EXPECT_TRUE(vl1.permanently_violated);  // lazy catches up, one state late
}

class TmCheckerBridgeTest : public ::testing::Test {};

TEST_F(TmCheckerBridgeTest, WAxiomsCheckableOnEncodedComputations) {
  // The W1/W3 axioms of the phi-tilde construction are *universal safety
  // sentences over an ordinary vocabulary*, so the Theorem 4.2 checker applies
  // to them directly — bridging the Section 3 machinery with the Section 4
  // algorithm.
  tm::TuringMachine machine = *tm::MakeShuttleMachine();
  tm::TmEncoding enc = *tm::TmEncoding::Create(&machine, /*with_w=*/true);
  tm::TmTildeFormulas tilde = *tm::BuildPhiTilde(enc);
  auto h = enc.EncodeComputation("01", 6);
  ASSERT_TRUE(h.ok());

  auto w1 = checker::CheckPotentialSatisfaction(*tilde.factory, tilde.w1, *h);
  ASSERT_TRUE(w1.ok()) << w1.status().ToString();
  EXPECT_TRUE(w1->potentially_satisfied);
  auto w3 = checker::CheckPotentialSatisfaction(*tilde.factory, tilde.w3, *h);
  ASSERT_TRUE(w3.ok()) << w3.status().ToString();
  EXPECT_TRUE(w3->potentially_satisfied);

  // Corrupt the history: mark W(0) twice (states 0 and 2) — W3 is violated
  // permanently; W1 still holds (one mark per state).
  DatabaseState extra = h->state(2);
  ASSERT_TRUE(extra.Erase(enc.w_pred(), {2}).ok());
  ASSERT_TRUE(extra.Insert(enc.w_pred(), {0}).ok());
  History bad2 = *History::Create(enc.vocabulary());
  ASSERT_TRUE(bad2.AppendState(h->state(0)).ok());
  ASSERT_TRUE(bad2.AppendState(h->state(1)).ok());
  ASSERT_TRUE(bad2.AppendState(extra).ok());

  auto w3_bad = checker::CheckPotentialSatisfaction(*tilde.factory, tilde.w3, bad2);
  ASSERT_TRUE(w3_bad.ok()) << w3_bad.status().ToString();
  EXPECT_FALSE(w3_bad->potentially_satisfied);
  EXPECT_TRUE(w3_bad->permanently_violated);
  auto w1_bad = checker::CheckPotentialSatisfaction(*tilde.factory, tilde.w1, bad2);
  ASSERT_TRUE(w1_bad.ok());
  EXPECT_TRUE(w1_bad->potentially_satisfied);

  // Two W marks in one state violate W1.
  DatabaseState twice = h->state(1);
  ASSERT_TRUE(twice.Insert(enc.w_pred(), {7}).ok());
  History bad3 = *History::Create(enc.vocabulary());
  ASSERT_TRUE(bad3.AppendState(h->state(0)).ok());
  ASSERT_TRUE(bad3.AppendState(twice).ok());
  auto w1_bad2 = checker::CheckPotentialSatisfaction(*tilde.factory, tilde.w1, bad3);
  ASSERT_TRUE(w1_bad2.ok());
  EXPECT_FALSE(w1_bad2->potentially_satisfied);
}

}  // namespace
}  // namespace tic
