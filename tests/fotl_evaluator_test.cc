// Tests for direct FOTL evaluation: the future fragment on ultimately
// periodic databases and the past fragment on finite histories.

#include <gtest/gtest.h>

#include "fotl/evaluator.h"
#include "fotl/parser.h"

namespace tic {
namespace fotl {
namespace {

class FutureEvalTest : public ::testing::Test {
 protected:
  FutureEvalTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
  }

  Formula Parse_(const std::string& s) { return *Parse(fac_.get(), s); }

  DatabaseState State(std::vector<Value> subs, std::vector<Value> fills) {
    DatabaseState s(vocab_);
    for (Value v : subs) EXPECT_TRUE(s.Insert(sub_, {v}).ok());
    for (Value v : fills) EXPECT_TRUE(s.Insert(fill_, {v}).ok());
    return s;
  }

  bool Eval(const UltimatelyPeriodicDb& db, const std::string& text) {
    auto res = EvaluateFuture(db, Parse_(text));
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() && *res;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::unique_ptr<FormulaFactory> fac_;
};

TEST_F(FutureEvalTest, AtomsAndBooleans) {
  UltimatelyPeriodicDb db(vocab_, {}, {State({1}, {})}, {State({}, {})});
  // No closed atoms without constants; use quantifiers.
  EXPECT_TRUE(Eval(db, "exists x . Sub(x)"));
  EXPECT_FALSE(Eval(db, "exists x . Fill(x)"));
  EXPECT_TRUE(Eval(db, "forall x . Fill(x) -> Sub(x)"));
  EXPECT_FALSE(Eval(db, "forall x . Sub(x)"));
}

TEST_F(FutureEvalTest, NextMovesOneState) {
  UltimatelyPeriodicDb db(vocab_, {}, {State({1}, {}), State({}, {1})},
                          {State({}, {})});
  EXPECT_TRUE(Eval(db, "exists x . Sub(x) & X Fill(x)"));
  EXPECT_FALSE(Eval(db, "exists x . X Sub(x)"));
}

TEST_F(FutureEvalTest, UntilOnThePrefix) {
  UltimatelyPeriodicDb db(vocab_, {},
                          {State({1}, {}), State({1}, {}), State({}, {1})},
                          {State({}, {})});
  EXPECT_TRUE(Eval(db, "exists x . Sub(x) until Fill(x)"));
  EXPECT_TRUE(Eval(db, "exists x . F Fill(x)"));
  EXPECT_FALSE(Eval(db, "exists x . G Sub(x)"));
}

TEST_F(FutureEvalTest, UntilMustHoldAcrossTheLoop) {
  // Sub(1) holds in the loop forever, Fill never: Sub U Fill is false, G Sub
  // is true from the loop on.
  UltimatelyPeriodicDb db(vocab_, {}, {}, {State({1}, {})});
  EXPECT_FALSE(Eval(db, "exists x . Sub(x) until Fill(x)"));
  EXPECT_TRUE(Eval(db, "exists x . G Sub(x)"));
  EXPECT_TRUE(Eval(db, "forall x . Sub(x) -> G Sub(x)"));
}

TEST_F(FutureEvalTest, AlternatingLoop) {
  // Loop: Sub(1) / Fill(1) alternating: G F of both.
  UltimatelyPeriodicDb db(vocab_, {}, {}, {State({1}, {}), State({}, {1})});
  EXPECT_TRUE(Eval(db, "exists x . G (F Sub(x) & F Fill(x))"));
  EXPECT_FALSE(Eval(db, "exists x . F G Sub(x)"));
}

TEST_F(FutureEvalTest, SubmitOnceSemantics) {
  UltimatelyPeriodicDb good(vocab_, {}, {State({1}, {}), State({2}, {})},
                            {State({}, {})});
  EXPECT_TRUE(Eval(good, "forall x . Sub(x) -> X G !Sub(x)"));
  UltimatelyPeriodicDb bad(vocab_, {}, {State({1}, {}), State({1}, {})},
                           {State({}, {})});
  EXPECT_FALSE(Eval(bad, "forall x . Sub(x) -> X G !Sub(x)"));
  // Resubmission inside the loop is also caught.
  UltimatelyPeriodicDb loop_bad(vocab_, {}, {}, {State({1}, {}), State({}, {})});
  EXPECT_FALSE(Eval(loop_bad, "forall x . Sub(x) -> X G !Sub(x)"));
}

TEST_F(FutureEvalTest, FreshElementsWitnessUniversalFailure) {
  // forall x . Sub(x) is false because irrelevant elements are never in Sub;
  // the automatically added fresh elements witness that.
  UltimatelyPeriodicDb db(vocab_, {}, {}, {State({1, 2, 3}, {})});
  EXPECT_FALSE(Eval(db, "forall x . Sub(x)"));
  EXPECT_TRUE(Eval(db, "exists x . !Sub(x)"));
}

TEST_F(FutureEvalTest, PastOperatorsRejected) {
  UltimatelyPeriodicDb db(vocab_, {}, {}, {State({}, {})});
  auto res = EvaluateFuture(db, Parse_("forall x . G (Sub(x) -> O Fill(x))"));
  EXPECT_TRUE(res.status().IsNotSupported());
}

TEST_F(FutureEvalTest, OpenFormulaRejected) {
  UltimatelyPeriodicDb db(vocab_, {}, {}, {State({}, {})});
  auto res = EvaluateFuture(db, Parse_("Sub(x)"));
  EXPECT_TRUE(res.status().IsInvalidArgument());
}

class PastEvalTest : public ::testing::Test {
 protected:
  PastEvalTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    fill_ = *v->AddPredicate("Fill", 1);
    vocab_ = v;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
    history_ = std::make_unique<History>(*History::Create(vocab_));
  }

  Formula Parse_(const std::string& s) { return *Parse(fac_.get(), s); }

  void Step(std::vector<Value> subs, std::vector<Value> fills) {
    DatabaseState* s = history_->AppendEmptyState();
    for (Value v : subs) ASSERT_TRUE(s->Insert(sub_, {v}).ok());
    for (Value v : fills) ASSERT_TRUE(s->Insert(fill_, {v}).ok());
  }

  bool EvalAt(const std::string& text, size_t t) {
    std::vector<Value> domain = history_->RelevantSet();
    domain.push_back(-1);  // a fresh stand-in
    FiniteHistoryEvaluator ev(history_.get(), domain);
    auto res = ev.EvaluateAt(Parse_(text), Valuation{}, t);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() && *res;
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::unique_ptr<FormulaFactory> fac_;
  std::unique_ptr<History> history_;
};

TEST_F(PastEvalTest, PrevAndOnce) {
  Step({1}, {});
  Step({}, {1});
  Step({}, {});
  EXPECT_TRUE(EvalAt("exists x . Y Fill(x)", 2));
  EXPECT_FALSE(EvalAt("exists x . Y Fill(x)", 1));
  EXPECT_TRUE(EvalAt("exists x . O Sub(x)", 2));
  EXPECT_FALSE(EvalAt("exists x . O Fill(x)", 0));
  // Y at the first instant is always false.
  EXPECT_FALSE(EvalAt("exists x . Y Sub(x)", 0));
}

TEST_F(PastEvalTest, SinceSemantics) {
  // Fill(1) at t=1; Sub(1) from t=1 onward. "Sub since Fill" at t=2: Fill at
  // s=1, Sub at u=2 (and only u in (1,2]) -> true.
  Step({}, {});
  Step({1}, {1});
  Step({1}, {});
  EXPECT_TRUE(EvalAt("exists x . Sub(x) since Fill(x)", 2));
  // At t=0 neither holds.
  EXPECT_FALSE(EvalAt("exists x . Sub(x) since Fill(x)", 0));
}

TEST_F(PastEvalTest, SinceRequiresUninterruptedLhs) {
  Step({}, {1});   // Fill(1)
  Step({}, {});    // gap: Sub(1) does not hold here
  Step({1}, {});
  EXPECT_FALSE(EvalAt("exists x . Sub(x) since Fill(x)", 2));
}

TEST_F(PastEvalTest, HistoricallyAndDuality) {
  Step({1}, {});
  Step({1}, {});
  EXPECT_TRUE(EvalAt("exists x . H Sub(x)", 1));
  Step({}, {});
  EXPECT_FALSE(EvalAt("exists x . H Sub(x)", 2));
  // H A == !O !A, checked pointwise on this history.
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(EvalAt("forall x . H Sub(x)", t), EvalAt("forall x .!(O !Sub(x))", t));
  }
}

TEST_F(PastEvalTest, FutureOperatorsRejected) {
  Step({}, {});
  std::vector<Value> domain = {0};
  FiniteHistoryEvaluator ev(history_.get(), domain);
  auto res = ev.EvaluateAt(Parse_("exists x . F Sub(x)"), Valuation{}, 0);
  EXPECT_TRUE(res.status().IsNotSupported());
}

TEST_F(PastEvalTest, OutOfRangeInstant) {
  Step({}, {});
  std::vector<Value> domain = {0};
  FiniteHistoryEvaluator ev(history_.get(), domain);
  auto res = ev.EvaluateAt(Parse_("exists x . Sub(x)"), Valuation{}, 5);
  EXPECT_TRUE(res.status().IsOutOfRange());
}

TEST(BuiltinEvalTest, RigidRelations) {
  EXPECT_TRUE(EvaluateBuiltin(Builtin::kLessEq, {2, 5}));
  EXPECT_TRUE(EvaluateBuiltin(Builtin::kLessEq, {5, 5}));
  EXPECT_FALSE(EvaluateBuiltin(Builtin::kLessEq, {6, 5}));
  EXPECT_TRUE(EvaluateBuiltin(Builtin::kSucc, {4, 5}));
  EXPECT_FALSE(EvaluateBuiltin(Builtin::kSucc, {5, 4}));
  EXPECT_TRUE(EvaluateBuiltin(Builtin::kZero, {0}));
  EXPECT_FALSE(EvaluateBuiltin(Builtin::kZero, {3}));
}

TEST(BoundVarsTest, CountsDistinctBoundVariables) {
  auto v = std::make_shared<Vocabulary>();
  ASSERT_TRUE(v->AddPredicate("p", 1).ok());
  FormulaFactory fac(v);
  auto f = Parse(&fac, "forall x . (exists y . p(y)) & (forall y . p(y))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(CountDistinctBoundVars(*f), 2u);  // x and y
}

}  // namespace
}  // namespace fotl
}  // namespace tic
