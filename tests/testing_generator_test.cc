// Validity tests for the shared structure-aware generators (src/testing/):
// everything the property suites and fuzz harnesses consume must be
// well-formed by construction — every generated FOTL sentence classifies as a
// closed universal safety sentence the checker accepts, every stream only
// touches the case's own vocabulary, and generation is bit-reproducible from
// its seed (the contract that makes TIC_REPLAY_SEED and the serialized
// reproducers trustworthy).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "checker/monitor.h"
#include "fotl/classify.h"
#include "fotl/printer.h"
#include "ptl/formula.h"
#include "testing/generators.h"
#include "testing/reproducer.h"

namespace tic {
namespace testing {
namespace {

// ---------------------------------------------------------------------------
// Entropy: the seed mode must be draw-for-draw identical to the historical
// raw std::mt19937 usage, or every ported suite silently changes its cases.
// ---------------------------------------------------------------------------

TEST(EntropyTest, SeedModeMatchesRawMt19937) {
  Entropy ent(42);
  std::mt19937 rng(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(ent.Raw(), rng());
  }
}

TEST(EntropyTest, BelowMatchesModuloDraw) {
  Entropy ent(7);
  std::mt19937 rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint32_t n = 1 + i % 17;
    ASSERT_EQ(ent.Below(n), rng() % n);
  }
}

TEST(EntropyTest, PickMatchesUniformIntDistribution) {
  Entropy ent(123);
  std::mt19937 rng(123);
  for (int i = 0; i < 1000; ++i) {
    int hi = i % 9;
    std::uniform_int_distribution<int> d(0, hi);
    ASSERT_EQ(ent.Pick(0, hi), d(rng));
  }
}

TEST(EntropyTest, ByteModeDrawsLittleEndianThenZero) {
  const uint8_t bytes[] = {0x01, 0x02, 0x03, 0x04, 0xff};
  Entropy ent(bytes, sizeof(bytes));
  EXPECT_EQ(ent.Raw(), 0x04030201u);
  EXPECT_FALSE(ent.exhausted());
  EXPECT_EQ(ent.Raw(), 0xffu);  // partial tail draw
  EXPECT_TRUE(ent.exhausted());
  EXPECT_EQ(ent.Raw(), 0u);  // exhausted: zeros forever
  EXPECT_EQ(ent.Pick(3, 9), 3);
}

// An exhausted byte stream drives every grammar to its leaf production, so
// generation terminates on arbitrary (including empty) fuzz inputs.
TEST(EntropyTest, ExhaustedByteModeYieldsLeafPtlFormula) {
  auto vocab = std::make_shared<ptl::PropVocabulary>();
  ptl::Factory fac(vocab);
  auto atoms = PtlAtoms(&fac, 3);
  Entropy ent(nullptr, 0);
  ptl::Formula f = GeneratePtlFormula(&fac, &ent, atoms, 64);
  EXPECT_EQ(f, atoms[0]);
}

TEST(GeneratorTest, PtlAtomsInternSingleLetters) {
  auto vocab = std::make_shared<ptl::PropVocabulary>();
  ptl::Factory fac(vocab);
  auto atoms = PtlAtoms(&fac, 4);
  ASSERT_EQ(atoms.size(), 4u);
  EXPECT_EQ(ToString(fac, atoms[0]), "a");
  EXPECT_EQ(ToString(fac, atoms[3]), "d");
}

// ---------------------------------------------------------------------------
// FOTL safety cases.
// ---------------------------------------------------------------------------

// Every generated sentence is a closed, future-only, universal formula
// (the paper's 8* tense(Sigma_0) class — the fragment the Section 4 checker
// is complete for) with exactly the advertised quantifier prefix.
TEST(GeneratorTest, SafetyCasesClassifyUniversal) {
  for (int seed = 0; seed < 500; ++seed) {
    Entropy ent(static_cast<uint32_t>(seed));
    FotlCase c = GenerateSafetyCase(&ent);
    fotl::Classification cls = fotl::Classify(c.sentence);
    ASSERT_TRUE(cls.closed) << "seed " << seed << ": "
                            << fotl::ToString(*c.factory, c.sentence);
    ASSERT_TRUE(cls.future_only) << "seed " << seed;
    ASSERT_TRUE(cls.universal) << "seed " << seed << ": "
                               << fotl::ToString(*c.factory, c.sentence);
    // Factory simplification may erase vacuous quantifiers (or the whole
    // matrix), so the realized prefix is bounded by — not equal to — the
    // requested variable count.
    ASSERT_LE(cls.external_universals.size(), c.num_vars) << "seed " << seed;
  }
}

// The grammar is safe by construction: the monitor (which enforces safety at
// Create time) must accept every generated sentence.
TEST(GeneratorTest, SafetyCasesAreAcceptedByTheMonitor) {
  for (int seed = 0; seed < 100; ++seed) {
    Entropy ent(static_cast<uint32_t>(seed));
    FotlCase c = GenerateSafetyCase(&ent);
    auto m = checker::Monitor::Create(c.factory, c.sentence);
    ASSERT_TRUE(m.ok()) << "seed " << seed << ": " << m.status().ToString()
                        << "\n" << fotl::ToString(*c.factory, c.sentence);
  }
}

// Streams only touch the case's own predicates, with matching (unary) arity
// and values from the declared universe plus the fresh element.
TEST(GeneratorTest, StreamsAreVocabularyConsistent) {
  SafetyCaseOptions options;
  for (int seed = 0; seed < 500; ++seed) {
    Entropy ent(static_cast<uint32_t>(seed));
    FotlCase c = GenerateSafetyCase(&ent, options);
    for (const Transaction& txn : c.stream) {
      for (const UpdateOp& op : txn) {
        EXPECT_NE(std::find(c.preds.begin(), c.preds.end(), op.predicate),
                  c.preds.end())
            << "seed " << seed;
        ASSERT_EQ(op.tuple.size(), 1u) << "seed " << seed;
        Value v = op.tuple[0];
        bool in_universe =
            std::find(options.universe.begin(), options.universe.end(), v) !=
                options.universe.end() ||
            v == options.fresh_element;
        EXPECT_TRUE(in_universe) << "seed " << seed << " value " << v;
      }
    }
  }
}

// Two generations from the same seed serialize identically — the property
// that makes "re-run with TIC_REPLAY_SEED=<n>" reproduce the exact case.
TEST(GeneratorTest, CasesAreBitReproducibleFromSeed) {
  for (int seed = 0; seed < 200; ++seed) {
    Entropy e1(static_cast<uint32_t>(seed));
    Entropy e2(static_cast<uint32_t>(seed));
    FotlCase a = GenerateSafetyCase(&e1);
    FotlCase b = GenerateSafetyCase(&e2);
    ASSERT_EQ(SerializeCase(a), SerializeCase(b)) << "seed " << seed;
  }
}

// The same holds for the PTL generator (distinct factories, so compare the
// rendered text rather than hash-consed pointers).
TEST(GeneratorTest, PtlFormulasAreBitReproducibleFromSeed) {
  for (int seed = 0; seed < 200; ++seed) {
    auto v1 = std::make_shared<ptl::PropVocabulary>();
    ptl::Factory f1(v1);
    auto v2 = std::make_shared<ptl::PropVocabulary>();
    ptl::Factory f2(v2);
    Entropy e1(static_cast<uint32_t>(seed));
    Entropy e2(static_cast<uint32_t>(seed));
    ptl::Formula a = GeneratePtlFormula(&f1, &e1, PtlAtoms(&f1, 3), 4);
    ptl::Formula b = GeneratePtlFormula(&f2, &e2, PtlAtoms(&f2, 3), 4);
    ASSERT_EQ(ToString(f1, a), ToString(f2, b)) << "seed " << seed;
  }
}

// Byte-driven generation (the fuzz entry point) also yields well-formed
// cases, whatever the bytes.
TEST(GeneratorTest, ByteModeCasesClassifyUniversal) {
  std::mt19937 rng(99);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> bytes(rng() % 200);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    Entropy ent(bytes.data(), bytes.size());
    FotlCase c = GenerateSafetyCase(&ent);
    fotl::Classification cls = fotl::Classify(c.sentence);
    EXPECT_TRUE(cls.closed && cls.future_only && cls.universal) << "case " << i;
  }
}

// Trigger cases: an open condition with exactly the one advertised parameter.
TEST(GeneratorTest, TriggerCasesHaveOneFreeVariable) {
  for (int seed = 0; seed < 200; ++seed) {
    Entropy ent(static_cast<uint32_t>(seed));
    FotlCase c = GenerateTriggerCase(&ent);
    ASSERT_EQ(c.sentence->free_vars().size(), 1u) << "seed " << seed;
    fotl::Classification cls = fotl::Classify(c.sentence);
    EXPECT_TRUE(cls.future_only) << "seed " << seed;
    EXPECT_FALSE(cls.closed) << "seed " << seed;
  }
}

// Reproducer round-trip: serialize -> parse -> serialize is a fixpoint, and
// the parsed case re-derives the quantifier count from the sentence.
TEST(ReproducerTest, SerializedCasesRoundTrip) {
  for (int seed = 0; seed < 200; ++seed) {
    Entropy ent(static_cast<uint32_t>(seed));
    FotlCase c = GenerateSafetyCase(&ent);
    std::string text = SerializeCase(c);
    auto parsed = ParseCase(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": "
                             << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(SerializeCase(*parsed), text) << "seed " << seed;
    // ParseCase re-derives the variable count from the sentence's realized
    // quantifier prefix (simplification may have dropped vacuous ones).
    EXPECT_EQ(parsed->num_vars,
              fotl::Classify(c.sentence).external_universals.size())
        << "seed " << seed;
    EXPECT_EQ(parsed->preds.size(), c.preds.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace testing
}  // namespace tic
