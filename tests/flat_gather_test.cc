// Tests for the cohort gather primitive (common/flat/gather.h): the selected
// backend — AVX2 vpgatherdd or the portable scalar loop — must compute
// exactly `out[i] = table[states[i] * cols + col]` for every shape, tail
// length and aliasing pattern the cohort stepper produces. The suite is
// registered twice in ctest: once plain, and once as flat_gather_test_scalar
// with TIC_SIMD=off in the environment (label `simd-scalar`), which pins the
// runtime dispatch to the scalar backend so both code paths stay honest
// regardless of the build host's CPU.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flat/gather.h"

namespace tic {
namespace flat {
namespace {

// Deterministic table fill: cell value encodes its own coordinates, so a
// wrong gather lane is immediately attributable to the state/col it read.
std::vector<uint32_t> MakeTable(uint32_t rows, uint32_t cols) {
  std::vector<uint32_t> t(static_cast<size_t>(rows) * cols);
  for (uint32_t r = 0; r < rows; ++r)
    for (uint32_t c = 0; c < cols; ++c) t[r * cols + c] = r * 1000003u + c;
  return t;
}

// xorshift32 — fixed seed, no libc rand state.
uint32_t Next(uint32_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 17;
  *s ^= *s << 5;
  return *s;
}

TEST(FlatGatherTest, BackendIsCoherentlyReported) {
  std::string name = GatherBackendName();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
  EXPECT_EQ(GatherWidth(), name == "avx2" ? 8u : 1u);
  const char* env = std::getenv("TIC_SIMD");
  if (env != nullptr && std::string(env) == "off") {
    EXPECT_EQ(name, "scalar");
    EXPECT_EQ(GatherWidth(), 1u);
  }
}

TEST(FlatGatherTest, MatchesReferenceAcrossShapesAndTails) {
  // Every n in [0, 33] covers the empty call, sub-width tails, exact
  // multiples of the 8-lane width, and a ragged 33; rows/cols vary so the
  // stride multiply is exercised beyond the trivial cols==1 case.
  uint32_t seed = 0x2545f491u;
  for (uint32_t cols : {1u, 3u, 4u, 7u}) {
    for (uint32_t rows : {1u, 2u, 17u, 64u}) {
      std::vector<uint32_t> table = MakeTable(rows, cols);
      for (size_t n = 0; n <= 33; ++n) {
        std::vector<uint32_t> states(n), out(n, 0xdeadbeefu), ref(n);
        for (size_t i = 0; i < n; ++i) states[i] = Next(&seed) % rows;
        for (uint32_t col = 0; col < cols; ++col) {
          for (size_t i = 0; i < n; ++i)
            ref[i] = table[states[i] * cols + col];
          GatherRow(table.data(), cols, col, states.data(), n, out.data());
          ASSERT_EQ(out, ref) << "cols=" << cols << " rows=" << rows
                              << " n=" << n << " col=" << col;
        }
      }
    }
  }
}

TEST(FlatGatherTest, OutMayAliasStates) {
  // The cohort stepper gathers in place: states[] doubles as out[]. Each
  // lane must be read before it is written, including inside one SIMD block.
  const uint32_t cols = 2, rows = 40;
  std::vector<uint32_t> table = MakeTable(rows, cols);
  uint32_t seed = 0x9e3779b9u;
  for (size_t n : {1u, 7u, 8u, 9u, 24u, 31u}) {
    std::vector<uint32_t> states(n);
    for (size_t i = 0; i < n; ++i) states[i] = Next(&seed) % rows;
    std::vector<uint32_t> ref(n);
    for (size_t i = 0; i < n; ++i) ref[i] = table[states[i] * cols + 1];
    GatherRow(table.data(), cols, 1, states.data(), n, states.data());
    EXPECT_EQ(states, ref) << "n=" << n;
  }
}

TEST(FlatGatherTest, LargeBlockStressAgainstReference) {
  // One cohort-sized block (10k slots, the acceptance benchmark shape).
  const uint32_t cols = 4, rows = 257;
  std::vector<uint32_t> table = MakeTable(rows, cols);
  const size_t n = 10240;
  std::vector<uint32_t> states(n), out(n), ref(n);
  uint32_t seed = 0x85ebca6bu;
  for (size_t i = 0; i < n; ++i) states[i] = Next(&seed) % rows;
  for (size_t i = 0; i < n; ++i) ref[i] = table[states[i] * cols + 3];
  GatherRow(table.data(), cols, 3, states.data(), n, out.data());
  EXPECT_EQ(out, ref);
}

}  // namespace
}  // namespace flat
}  // namespace tic
