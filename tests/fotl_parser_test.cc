// Parser and printer tests: round trips, precedence, errors, and the paper's
// example constraints.

#include <gtest/gtest.h>

#include "fotl/parser.h"
#include "fotl/printer.h"

namespace tic {
namespace fotl {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    auto vocab = std::make_shared<Vocabulary>();
    EXPECT_TRUE(vocab->AddPredicate("Sub", 1).ok());
    EXPECT_TRUE(vocab->AddPredicate("Fill", 1).ok());
    EXPECT_TRUE(vocab->AddPredicate("R", 2).ok());
    EXPECT_TRUE(vocab->AddConstant("alice").ok());
    vocab_ = vocab;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
  }

  Formula MustParse(const std::string& text) {
    auto res = Parse(fac_.get(), text);
    EXPECT_TRUE(res.ok()) << text << " -> " << res.status().ToString();
    return res.ok() ? *res : fac_->True();
  }

  void ExpectRoundTrip(const std::string& text) {
    Formula f = MustParse(text);
    std::string printed = ToString(*fac_, f);
    Formula g = MustParse(printed);
    EXPECT_EQ(f, g) << text << " printed as " << printed;
  }

  VocabularyPtr vocab_;
  std::unique_ptr<FormulaFactory> fac_;
};

TEST_F(ParserTest, Atoms) {
  Formula f = MustParse("Sub(x)");
  EXPECT_EQ(f->kind(), NodeKind::kAtom);
  EXPECT_EQ(f->terms().size(), 1u);
  EXPECT_TRUE(f->terms()[0].is_variable());

  Formula g = MustParse("Sub(alice)");
  EXPECT_TRUE(g->terms()[0].is_constant());
}

TEST_F(ParserTest, EqualityAndInequality) {
  Formula f = MustParse("x = y");
  EXPECT_EQ(f->kind(), NodeKind::kEquals);
  Formula g = MustParse("x != y");
  EXPECT_EQ(g->kind(), NodeKind::kNot);
  EXPECT_EQ(g->child(0)->kind(), NodeKind::kEquals);
  // x = x folds to true.
  EXPECT_EQ(MustParse("x = x")->kind(), NodeKind::kTrue);
}

TEST_F(ParserTest, PrecedenceImpliesIsLowest) {
  // a & b -> c | d  ==  (a & b) -> (c | d)
  Formula f = MustParse("Sub(x) & Fill(x) -> Sub(y) | Fill(y)");
  EXPECT_EQ(f->kind(), NodeKind::kImplies);
  EXPECT_EQ(f->lhs()->kind(), NodeKind::kAnd);
  EXPECT_EQ(f->rhs()->kind(), NodeKind::kOr);
}

TEST_F(ParserTest, UntilBindsTighterThanAnd) {
  Formula f = MustParse("Sub(x) until Fill(x) & Sub(y)");
  EXPECT_EQ(f->kind(), NodeKind::kAnd);
  EXPECT_EQ(f->lhs()->kind(), NodeKind::kUntil);
}

TEST_F(ParserTest, UntilIsRightAssociative) {
  Formula f = MustParse("Sub(x) until Fill(x) until Sub(y)");
  EXPECT_EQ(f->kind(), NodeKind::kUntil);
  EXPECT_EQ(f->rhs()->kind(), NodeKind::kUntil);
}

TEST_F(ParserTest, UnaryOperatorsAndAliases) {
  EXPECT_EQ(MustParse("X Sub(x)"), MustParse("next Sub(x)"));
  EXPECT_EQ(MustParse("F Sub(x)"), MustParse("eventually Sub(x)"));
  EXPECT_EQ(MustParse("G Sub(x)"), MustParse("always Sub(x)"));
  EXPECT_EQ(MustParse("Y Sub(x)"), MustParse("prev Sub(x)"));
  EXPECT_EQ(MustParse("O Sub(x)"), MustParse("once Sub(x)"));
  EXPECT_EQ(MustParse("H Sub(x)"), MustParse("historically Sub(x)"));
  EXPECT_EQ(MustParse("!Sub(x)"), MustParse("not Sub(x)"));
  EXPECT_EQ(MustParse("Sub(x) & Fill(x)"), MustParse("Sub(x) and Fill(x)"));
  EXPECT_EQ(MustParse("Sub(x) | Fill(x)"), MustParse("Sub(x) or Fill(x)"));
  EXPECT_EQ(MustParse("Sub(x) -> Fill(x)"), MustParse("Sub(x) implies Fill(x)"));
}

TEST_F(ParserTest, QuantifierSpansRight) {
  Formula f = MustParse("forall x . Sub(x) -> Fill(x)");
  EXPECT_EQ(f->kind(), NodeKind::kForall);
  EXPECT_EQ(f->child(0)->kind(), NodeKind::kImplies);
}

TEST_F(ParserTest, MultiVariableQuantifier) {
  Formula f = MustParse("forall x y . R(x, y)");
  EXPECT_EQ(f->kind(), NodeKind::kForall);
  EXPECT_EQ(f->child(0)->kind(), NodeKind::kForall);
  EXPECT_EQ(f, MustParse("forall x . forall y . R(x, y)"));
}

TEST_F(ParserTest, PaperExampleSubmitOnce) {
  Formula f = MustParse("forall x . Sub(x) -> X G !Sub(x)");
  EXPECT_TRUE(f->is_closed());
  EXPECT_TRUE(f->has_future());
  EXPECT_FALSE(f->has_past());
}

TEST_F(ParserTest, PaperExampleFifo) {
  Formula f = MustParse(
      "forall x y . !(x != y & Sub(x) & ((!Fill(x)) until "
      "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  EXPECT_TRUE(f->is_closed());
  EXPECT_EQ(f->kind(), NodeKind::kForall);
}

TEST_F(ParserTest, RoundTrips) {
  ExpectRoundTrip("forall x . Sub(x) -> X G !Sub(x)");
  ExpectRoundTrip("exists x . Sub(x) & F Fill(x)");
  ExpectRoundTrip("forall x y . !(x != y & Sub(x) & ((!Fill(x)) until "
                  "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  ExpectRoundTrip("Sub(alice) | (Sub(x) until Fill(x))");
  ExpectRoundTrip("G (Sub(x) -> O Sub(x))");
  ExpectRoundTrip("R(x, alice) & x = y | x != y");
  ExpectRoundTrip("H (Y Sub(x) since Fill(x))");
}

TEST_F(ParserTest, Errors) {
  EXPECT_TRUE(Parse(fac_.get(), "").status().IsParseError());
  EXPECT_TRUE(Parse(fac_.get(), "Sub(x").status().IsParseError());
  EXPECT_TRUE(Parse(fac_.get(), "Sub(x))").status().IsParseError());
  EXPECT_TRUE(Parse(fac_.get(), "Unknown(x)").status().IsNotFound());
  EXPECT_TRUE(Parse(fac_.get(), "forall . Sub(x)").status().IsParseError());
  EXPECT_TRUE(Parse(fac_.get(), "Sub(x) &").status().IsParseError());
  EXPECT_TRUE(Parse(fac_.get(), "Sub(1)").status().IsParseError());  // no numerals
  // Arity mismatch.
  EXPECT_TRUE(Parse(fac_.get(), "Sub(x, y)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse(fac_.get(), "R(x)").status().IsInvalidArgument());
}

TEST_F(ParserTest, HashConsingSharesEqualSubformulas) {
  Formula a = MustParse("Sub(x) & Fill(x)");
  Formula b = MustParse("Sub(x) & Fill(x)");
  EXPECT_EQ(a, b);
  size_t before = fac_->num_nodes();
  MustParse("Sub(x) & Fill(x)");
  EXPECT_EQ(fac_->num_nodes(), before);
}

TEST_F(ParserTest, SizeAccountsTreeNodes) {
  Formula atom = MustParse("Sub(x)");
  EXPECT_EQ(atom->size(), 1u);
  Formula f = MustParse("Sub(x) & Sub(x)");
  // And() folds idempotent conjunction: a & a == a.
  EXPECT_EQ(f, atom);
  Formula g = MustParse("Sub(x) & Fill(x)");
  EXPECT_EQ(g->size(), 3u);
}

}  // namespace
}  // namespace fotl
}  // namespace tic
