// Shrinker convergence on a planted bug: the test-only fault hook makes
// BackendVerdictsAgree report a divergence on exactly the cases whose
// sentence mentions P0 and whose stream inserts P0(1). Starting from a bulky
// failing case, ShrinkCase must converge to (essentially) the minimal
// failing pair — a <= 3-node sentence and a <= 2-transaction stream — and the
// minimized reproducer must survive a file round-trip still failing, which is
// the whole point of emitting reproducer files from CI logs.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fotl/printer.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"
#include "testing/shrink.h"

namespace tic {
namespace testing {
namespace {

// Clears the fault hook even when an assertion aborts the test body.
struct HookGuard {
  ~HookGuard() { SetBackendFaultHookForTest(nullptr); }
};

// The planted "bug": present iff the sentence mentions predicate P0 AND the
// stream still inserts P0(1). Both sides shrink — the sentence must keep its
// P0 atom, the stream must keep one insert op.
bool PlantedBug(const FotlCase& c) {
  if (fotl::ToString(*c.factory, c.sentence).find("P0(") == std::string::npos) {
    return false;
  }
  for (const Transaction& txn : c.stream) {
    for (const UpdateOp& op : txn) {
      if (op.kind == UpdateOp::Kind::kInsert && op.predicate == c.preds[0] &&
          op.tuple == Tuple{1}) {
        return true;
      }
    }
  }
  return false;
}

bool StillFails(const FotlCase& c) {
  auto r = BackendVerdictsAgree(c);
  return r.ok() && !r->pass;
}

size_t TotalOps(const FotlCase& c) {
  size_t n = 0;
  for (const Transaction& txn : c.stream) n += txn.size();
  return n;
}

// A deliberately bulky failing seed case: a 2-variable sentence with several
// redundant conjuncts around the load-bearing P0 atom, and a 6-transaction
// stream where only one op (the +P0(1)) matters.
FotlCase BulkySeedCase() {
  CaseBuilder builder(3);
  auto& fac = *builder.factory();
  fotl::Formula p0x = *fac.Atom(builder.preds()[0], {builder.Var(0)});
  fotl::Formula p1x = *fac.Atom(builder.preds()[1], {builder.Var(0)});
  fotl::Formula p2y = *fac.Atom(builder.preds()[2], {builder.Var(1)});
  fotl::Formula matrix =
      fac.And(fac.Implies(p1x, fac.Next(fac.Or(p1x, p2y))),
              fac.And(fac.Or(p0x, fac.Not(p2y)),
                      fac.Always(fac.Implies(p2y, fac.Or(p1x, p2y)))));
  fotl::Formula phi = builder.Quantify(fac.Always(matrix), 2);

  std::vector<Transaction> stream;
  Entropy ent(1234);
  for (int t = 0; t < 6; ++t) {
    stream.push_back(ChurnTxn(&ent, builder.preds(), {1, 2, 3}));
  }
  // Guarantee the load-bearing op is present regardless of the churn draws.
  stream[3].push_back(UpdateOp::Insert(builder.preds()[0], {1}));
  return builder.Finish(phi, 2, std::move(stream));
}

TEST(ShrinkerTest, ConvergesToMinimalPlantedBug) {
  HookGuard guard;
  FotlCase seed = BulkySeedCase();

  // Sanity: without the hook, the real backends agree — the "bug" is purely
  // the planted one.
  ASSERT_FALSE(StillFails(seed));
  SetBackendFaultHookForTest(PlantedBug);
  ASSERT_TRUE(StillFails(seed));

  ShrinkStats stats;
  FotlCase shrunk = ShrinkCase(seed, StillFails, &stats);

  // The result still fails, and is minimal for the planted predicate: the
  // sentence needs nothing beyond `forall x . P0(x)` (2 nodes) and the
  // stream nothing beyond the single +P0(1) op.
  EXPECT_TRUE(StillFails(shrunk));
  EXPECT_LE(shrunk.sentence->size(), 3u)
      << fotl::ToString(*shrunk.factory, shrunk.sentence);
  EXPECT_LE(shrunk.stream.size(), 2u) << SerializeCase(shrunk);
  EXPECT_LE(TotalOps(shrunk), 2u) << SerializeCase(shrunk);
  EXPECT_TRUE(PlantedBug(shrunk));
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.improvements, 0u);

  // The minimized case round-trips through a reproducer file and the reloaded
  // copy still fails — a failure written from a CI log replays locally.
  std::string path =
      ::testing::TempDir() + "/tic_shrinker_reproducer.txt";
  ASSERT_TRUE(WriteCaseFile(shrunk, path).ok());
  auto loaded = LoadCaseFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeCase(*loaded), SerializeCase(shrunk));
  EXPECT_TRUE(StillFails(*loaded));
  std::remove(path.c_str());
}

// Shrinking a case that fails for a reason independent of the sentence still
// minimizes the sentence to a single quantified atom: candidates the checker
// rejects are discarded, never returned.
TEST(ShrinkerTest, AlwaysReturnsAValidFailingCase) {
  HookGuard guard;
  // Bug depends on the stream only.
  SetBackendFaultHookForTest([](const FotlCase& c) {
    for (const Transaction& txn : c.stream) {
      for (const UpdateOp& op : txn) {
        if (op.kind == UpdateOp::Kind::kInsert && op.tuple == Tuple{2}) {
          return true;
        }
      }
    }
    return false;
  });

  Entropy ent(77);
  FotlCase seed = GenerateSafetyCase(&ent);
  seed.stream[0].push_back(UpdateOp::Insert(seed.preds[0], {2}));
  ASSERT_TRUE(StillFails(seed));

  FotlCase shrunk = ShrinkCase(seed, StillFails);
  EXPECT_TRUE(StillFails(shrunk));
  // The sentence axis is unconstrained by this bug, so it bottoms out at a
  // single requantified atom; the stream keeps exactly one insert of (2).
  EXPECT_LE(shrunk.sentence->size(), 3u)
      << fotl::ToString(*shrunk.factory, shrunk.sentence);
  EXPECT_LE(TotalOps(shrunk), 1u) << SerializeCase(shrunk);
}

}  // namespace
}  // namespace testing
}  // namespace tic
