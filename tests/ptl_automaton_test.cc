// Tests for the tableau automaton inspection/visualization API.

#include <gtest/gtest.h>

#include "ptl/automaton.h"
#include "ptl/parser.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {
namespace {

class AutomatonTest : public ::testing::Test {
 protected:
  AutomatonTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {}

  TableauAutomaton Build(const std::string& text) {
    auto f = Parse(&fac_, text);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    auto a = BuildTableauAutomaton(&fac_, *f);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    return a.ok() ? *a : TableauAutomaton{};
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
};

TEST_F(AutomatonTest, UnsatFormulaGivesNoAcceptingScc) {
  TableauAutomaton a = Build("p & !p");
  EXPECT_FALSE(a.satisfiable);
  EXPECT_TRUE(a.states.empty());
}

TEST_F(AutomatonTest, GpAutomatonShape) {
  TableauAutomaton a = Build("G p");
  EXPECT_TRUE(a.satisfiable);
  // One state {p, G p, X G p} with a self loop.
  ASSERT_EQ(a.states.size(), 1u);
  EXPECT_TRUE(a.states[0].initial);
  EXPECT_EQ(a.states[0].true_letters, std::vector<std::string>{"p"});
  ASSERT_EQ(a.edges[0].size(), 1u);
  EXPECT_EQ(a.edges[0][0], 0u);
  EXPECT_TRUE(a.scc_self_fulfilling[a.scc_of[0]]);
}

TEST_F(AutomatonTest, UntilCarriesObligations) {
  TableauAutomaton a = Build("p U q");
  EXPECT_TRUE(a.satisfiable);
  bool some_obligation = false;
  bool some_fulfilling_state = false;
  for (size_t v = 0; v < a.states.size(); ++v) {
    if (!a.states[v].obligations.empty()) {
      some_obligation = true;
      EXPECT_EQ(a.states[v].obligations[0], "q");
    }
    some_fulfilling_state =
        some_fulfilling_state || a.scc_self_fulfilling[a.scc_of[v]];
  }
  EXPECT_TRUE(some_obligation);
  EXPECT_TRUE(some_fulfilling_state);
}

TEST_F(AutomatonTest, SatisfiabilityMatchesCheckSat) {
  for (const char* text :
       {"G p", "p U q", "G F p", "(p U q) & G !q", "F p & G !p", "G (p -> X !p)",
        "p R q", "!(p U q) & F q"}) {
    auto f = Parse(&fac_, text);
    ASSERT_TRUE(f.ok());
    TableauAutomaton a = Build(text);
    auto sat = CheckSat(&fac_, *f);
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(a.satisfiable, sat->satisfiable) << text;
  }
}

TEST_F(AutomatonTest, DotOutputIsWellFormed) {
  TableauAutomaton a = Build("p U q");
  std::string dot = ToDot(a);
  EXPECT_NE(dot.find("digraph tableau {"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // accepting states
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);    // initial states
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(AutomatonTest, BudgetIsHonored) {
  TableauOptions opts;
  opts.max_states = 2;
  auto f = Parse(&fac_, "(p U q) & (q U r) & (r U p)");
  ASSERT_TRUE(f.ok());
  auto a = BuildTableauAutomaton(&fac_, *f, opts);
  EXPECT_TRUE(a.status().IsResourceExhausted());
}

}  // namespace
}  // namespace ptl
}  // namespace tic
