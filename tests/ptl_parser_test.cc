// Tests for the propositional-TL text parser: round trips with the printer,
// precedence, operator keywords, and errors.

#include <gtest/gtest.h>

#include "ptl/parser.h"

namespace tic {
namespace ptl {
namespace {

class PtlParserTest : public ::testing::Test {
 protected:
  PtlParserTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {}

  Formula MustParse(const std::string& text) {
    auto res = Parse(&fac_, text);
    EXPECT_TRUE(res.ok()) << text << " -> " << res.status().ToString();
    return res.ok() ? *res : fac_.True();
  }

  void ExpectRoundTrip(const std::string& text) {
    Formula f = MustParse(text);
    std::string printed = ToString(fac_, f);
    Formula g = MustParse(printed);
    EXPECT_EQ(f, g) << text << " printed as " << printed;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
};

TEST_F(PtlParserTest, AtomsAndConstants) {
  Formula p = MustParse("p");
  EXPECT_EQ(p->kind(), Kind::kAtom);
  EXPECT_EQ(vocab_->Name(p->atom()), "p");
  EXPECT_EQ(MustParse("true"), fac_.True());
  EXPECT_EQ(MustParse("false"), fac_.False());
  // Same name -> same letter.
  EXPECT_EQ(MustParse("p"), p);
}

TEST_F(PtlParserTest, Precedence) {
  // -> lowest; | then &; U/R bind tighter than &; unaries tightest.
  Formula f = MustParse("p & q -> r | s");
  EXPECT_EQ(f->kind(), Kind::kImplies);
  EXPECT_EQ(f->lhs()->kind(), Kind::kAnd);
  EXPECT_EQ(f->rhs()->kind(), Kind::kOr);

  Formula g = MustParse("p U q & r");
  EXPECT_EQ(g->kind(), Kind::kAnd);
  // And() canonicalizes operand order; the Until must be one of the two sides.
  EXPECT_TRUE(g->lhs()->kind() == Kind::kUntil || g->rhs()->kind() == Kind::kUntil);

  Formula h = MustParse("!p U q");
  EXPECT_EQ(h->kind(), Kind::kUntil);
  EXPECT_EQ(h->lhs()->kind(), Kind::kNot);
}

TEST_F(PtlParserTest, RightAssociativity) {
  EXPECT_EQ(MustParse("p U q U r"), MustParse("p U (q U r)"));
  EXPECT_EQ(MustParse("p -> q -> r"), MustParse("p -> (q -> r)"));
  EXPECT_EQ(MustParse("p R q R r"), MustParse("p R (q R r)"));
}

TEST_F(PtlParserTest, UnaryChains) {
  Formula f = MustParse("G F p");
  EXPECT_EQ(f->kind(), Kind::kAlways);
  EXPECT_EQ(f->child(0)->kind(), Kind::kEventually);
  EXPECT_EQ(MustParse("X X p"), fac_.Next(fac_.Next(MustParse("p"))));
  EXPECT_EQ(MustParse("!!p"), MustParse("p"));  // factory folds
}

TEST_F(PtlParserTest, RoundTrips) {
  ExpectRoundTrip("G (p -> X q)");
  ExpectRoundTrip("(p U q) & (r R s)");
  ExpectRoundTrip("F (a & !b) | G c");
  ExpectRoundTrip("p -> q -> r");
  ExpectRoundTrip("!(p & q) U (r | false)");
}

TEST_F(PtlParserTest, Errors) {
  EXPECT_TRUE(Parse(&fac_, "").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "(p").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "p q").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "p &").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "U p").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "p # q").status().IsParseError());
}

TEST_F(PtlParserTest, OperatorNamesAreReserved) {
  EXPECT_TRUE(Parse(&fac_, "X").status().IsParseError());
  EXPECT_TRUE(Parse(&fac_, "p U U").status().IsParseError());
}

}  // namespace
}  // namespace ptl
}  // namespace tic
