// Tests for FOTL transformations: desugaring, substitution, atom rewriting,
// cross-factory transfer.

#include <gtest/gtest.h>

#include <functional>

#include "fotl/parser.h"
#include "fotl/printer.h"
#include "fotl/transform.h"

namespace tic {
namespace fotl {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  TransformTest() {
    auto v = std::make_shared<Vocabulary>();
    p_ = *v->AddPredicate("p", 1);
    r_ = *v->AddPredicate("r", 2);
    c_ = *v->AddConstant("c");
    vocab_ = v;
    fac_ = std::make_unique<FormulaFactory>(vocab_);
  }

  Formula Parse_(const std::string& s) {
    auto res = Parse(fac_.get(), s);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return *res;
  }

  VocabularyPtr vocab_;
  PredicateId p_, r_;
  ConstantId c_;
  std::unique_ptr<FormulaFactory> fac_;
};

TEST_F(TransformTest, DesugarEventually) {
  Formula f = Desugar(fac_.get(), Parse_("F p(x)"));
  // F A == true until A.
  EXPECT_EQ(f->kind(), NodeKind::kUntil);
  EXPECT_EQ(f->lhs()->kind(), NodeKind::kTrue);
}

TEST_F(TransformTest, DesugarAlways) {
  Formula f = Desugar(fac_.get(), Parse_("G p(x)"));
  // G A == !(true until !A).
  EXPECT_EQ(f->kind(), NodeKind::kNot);
  EXPECT_EQ(f->child(0)->kind(), NodeKind::kUntil);
}

TEST_F(TransformTest, DesugarPastPair) {
  Formula once = Desugar(fac_.get(), Parse_("O p(x)"));
  EXPECT_EQ(once->kind(), NodeKind::kSince);
  EXPECT_EQ(once->lhs()->kind(), NodeKind::kTrue);
  Formula hist = Desugar(fac_.get(), Parse_("H p(x)"));
  EXPECT_EQ(hist->kind(), NodeKind::kNot);
  EXPECT_EQ(hist->child(0)->kind(), NodeKind::kSince);
}

TEST_F(TransformTest, DesugarIsDeepAndIdempotent) {
  Formula f = Parse_("forall x . G (p(x) -> F r(x, y))");
  Formula d = Desugar(fac_.get(), f);
  EXPECT_FALSE(d == f);
  std::function<bool(Formula)> no_sugar = [&](Formula g) {
    if (g->kind() == NodeKind::kEventually || g->kind() == NodeKind::kAlways ||
        g->kind() == NodeKind::kOnce || g->kind() == NodeKind::kHistorically) {
      return false;
    }
    for (int i = 0; i < 2; ++i) {
      if (g->child(i) != nullptr && !no_sugar(g->child(i))) return false;
    }
    return true;
  };
  EXPECT_TRUE(no_sugar(d));
  EXPECT_EQ(Desugar(fac_.get(), d), d);
}

TEST_F(TransformTest, SubstituteVarByConstant) {
  Formula f = Parse_("p(x) & r(x, y)");
  VarId x = fac_->InternVar("x");
  auto g = SubstituteVar(fac_.get(), f, x, Term::Const(c_));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*fac_, *g), "p(c) & r(c, y)");
}

TEST_F(TransformTest, SubstituteLeavesBoundOccurrences) {
  Formula f = Parse_("p(x) & (forall x . r(x, y))");
  VarId x = fac_->InternVar("x");
  auto g = SubstituteVar(fac_.get(), f, x, Term::Const(c_));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*fac_, *g), "p(c) & (forall x . r(x, y))");
}

TEST_F(TransformTest, SubstituteDetectsCapture) {
  Formula f = Parse_("forall y . r(x, y)");
  VarId x = fac_->InternVar("x");
  VarId y = fac_->InternVar("y");
  auto g = SubstituteVar(fac_.get(), f, x, Term::Var(y));
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST_F(TransformTest, SimultaneousSubstitution) {
  Formula f = Parse_("r(x, y)");
  VarId x = fac_->InternVar("x");
  VarId y = fac_->InternVar("y");
  // Swap x and y simultaneously via fresh intermediates is unnecessary: the
  // substitution is simultaneous by definition.
  std::unordered_map<VarId, Term> swap{{x, Term::Var(y)}, {y, Term::Var(x)}};
  auto g = SubstituteVars(fac_.get(), f, swap);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*fac_, *g), "r(y, x)");
}

TEST_F(TransformTest, SubstituteThroughTemporal) {
  Formula f = Parse_("p(x) until (G r(x, y))");
  VarId x = fac_->InternVar("x");
  auto g = SubstituteVar(fac_.get(), f, x, Term::Const(c_));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*fac_, *g), "p(c) until G r(c, y)");
}

TEST_F(TransformTest, RewriteAtoms) {
  Formula f = Parse_("p(x) & G r(x, y)");
  auto g = RewriteAtoms(fac_.get(), f, [&](Formula atom) -> Result<Formula> {
    if (atom->predicate() == p_) return fac_->Not(atom);
    return atom;
  });
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(*fac_, *g), "!p(x) & G r(x, y)");
}

TEST_F(TransformTest, TransferFormulaAcrossFactories) {
  Formula f = Parse_("forall x . p(x) -> (r(x, c) until p(c))");
  // Target vocabulary declares the same names (different ids order).
  auto v2 = std::make_shared<Vocabulary>();
  ASSERT_TRUE(v2->AddPredicate("r", 2).ok());
  ASSERT_TRUE(v2->AddPredicate("p", 1).ok());
  ASSERT_TRUE(v2->AddConstant("c").ok());
  FormulaFactory fac2(v2);
  auto g = TransferFormula(*fac_, f, &fac2);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(ToString(fac2, *g), ToString(*fac_, f));
}

TEST_F(TransformTest, TransferFailsOnMissingSymbol) {
  Formula f = Parse_("p(x)");
  auto v2 = std::make_shared<Vocabulary>();
  FormulaFactory fac2(v2);
  EXPECT_TRUE(TransferFormula(*fac_, f, &fac2).status().IsNotFound());
}

}  // namespace
}  // namespace fotl
}  // namespace tic
