// Metamorphic suite for the offline automaton minimizer: on seeded random
// PTL formulas, a TransitionSystem that runs MinimizeNow at random points
// along a random letter stream (states remapped through Representative) must
// report exactly the per-step (any_survivor, live) sequence of an identical
// system that never minimizes — and the pass must be idempotent: a second
// consecutive MinimizeNow refines nothing and leaves every representative
// unchanged. The oracle body lives in src/testing/oracles.cc; this file is
// the seeded driver plus a few deterministic structural checks.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ptl/formula.h"
#include "ptl/transition_system.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"

namespace tic {
namespace ptl {
namespace {

namespace tt = tic::testing;

TEST(MinimizeTest, RandomFormulasAgreeWithUnminimizedRun) {
  // 600 seeded random formulas, depth 4 over 3 letters, 12-step streams with
  // minimization fired at random points (p = 1/4 per step) plus the final
  // idempotence pass. Non-compiling draws (budget) pass vacuously inside the
  // oracle; assert the sweep still exercised plenty of real automata.
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = tt::PtlAtoms(&fac, 3);
  auto replay = tt::ReplaySeedFromEnv();
  for (int seed = 0; seed < 600; ++seed) {
    if (replay && *replay != static_cast<uint64_t>(seed)) continue;
    tt::Entropy ent(0x94d049bbu + static_cast<uint32_t>(seed));
    Formula f = tt::GeneratePtlFormula(&fac, &ent, atoms, 4);
    auto r = tt::MinimizedAutomatonAgrees(&fac, f, &ent, 12);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString()
                        << "\nformula: " << ToString(fac, f);
    ASSERT_TRUE(r->pass) << "seed " << seed << " (re-run with TIC_REPLAY_SEED="
                         << seed << "): " << r->detail
                         << "\nformula: " << ToString(fac, f);
  }
}

TEST(MinimizeTest, CollapsesEquivalentDisjuncts) {
  // G(a) | G(a): expand a few steps, quotient, and keep stepping through the
  // remapped id — the system must still track G(a) semantics exactly.
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = tt::PtlAtoms(&fac, 1);
  Formula f = fac.Or(fac.Always(atoms[0]), fac.Always(atoms[0]));
  auto ts = TransitionSystem::Compile(&fac, f);
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();

  PropState a_on;
  a_on.Set((*ts)->default_letters()[0], true);
  uint32_t s = (*ts)->initial();
  for (int i = 0; i < 4; ++i) {
    auto step = (*ts)->Step(s, a_on, (*ts)->default_letters());
    ASSERT_TRUE(step.ok());
    EXPECT_TRUE(step->any_survivor);
    s = step->next;
  }
  (*ts)->MinimizeNow();
  EXPECT_GT((*ts)->minimize_stats().runs, 0u);
  s = (*ts)->Representative(s);

  // Post-quotient behaviour: letting `a` drop kills G(a).
  PropState a_off;
  auto live = (*ts)->Step(s, a_on, (*ts)->default_letters());
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE(live->any_survivor);
  auto dead = (*ts)->Step((*ts)->Representative(live->next), a_off,
                          (*ts)->default_letters());
  ASSERT_TRUE(dead.ok());
  EXPECT_FALSE(dead->any_survivor);
}

TEST(MinimizeTest, IdempotentOnFreshSystem) {
  // MinimizeNow on a system with only the initial state-set expanded must be
  // safe, and a second run must not move any representative.
  auto vocab = std::make_shared<PropVocabulary>();
  Factory fac(vocab);
  std::vector<Formula> atoms = tt::PtlAtoms(&fac, 2);
  Formula f = fac.Always(fac.Or(atoms[0], atoms[1]));
  auto ts = TransitionSystem::Compile(&fac, f);
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  (*ts)->MinimizeNow();
  uint32_t rep0 = (*ts)->Representative((*ts)->initial());
  MinimizeStats first = (*ts)->minimize_stats();
  (*ts)->MinimizeNow();
  MinimizeStats second = (*ts)->minimize_stats();
  EXPECT_EQ(rep0, (*ts)->Representative((*ts)->initial()));
  EXPECT_EQ(first.state_sets, second.state_sets);
  EXPECT_EQ(first.tableau_classes, second.tableau_classes);
  EXPECT_EQ(second.runs, first.runs + 1);
}

}  // namespace
}  // namespace ptl
}  // namespace tic
