// Tests for the specification format and the replay driver.

#include <gtest/gtest.h>

#include "spec/spec.h"

namespace tic {
namespace spec {
namespace {

constexpr char kOrdersSpec[] = R"(
# order processing
predicate Sub/1
predicate Fill/1
constant  vip = 99

constraint submit_once : forall x . G (Sub(x) -> X G !Sub(x))
past       audited     : forall x . G (Fill(x) -> O Sub(x))
trigger    dup_alert   : F (Sub(x) & X F Sub(x))

step +Sub(1)
step -Sub(1) +Sub(vip)
step -Sub(vip) +Fill(1)
step +Sub(1)
)";

TEST(SpecParseTest, ParsesVocabularyConstraintsAndSteps) {
  auto spec = ParseSpecification(kOrdersSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->vocabulary->num_predicates(), 2u);
  EXPECT_EQ(spec->vocabulary->num_constants(), 1u);
  EXPECT_EQ(spec->constant_interpretation, std::vector<Value>{99});
  ASSERT_EQ(spec->constraints.size(), 3u);
  EXPECT_EQ(spec->constraints[0].engine, ConstraintDecl::Engine::kUniversal);
  EXPECT_EQ(spec->constraints[1].engine, ConstraintDecl::Engine::kPast);
  EXPECT_EQ(spec->constraints[2].engine, ConstraintDecl::Engine::kTrigger);
  ASSERT_EQ(spec->steps.size(), 4u);
  EXPECT_EQ(spec->steps[0].size(), 1u);
  EXPECT_EQ(spec->steps[1].size(), 2u);
  // The constant resolved to its interpretation.
  EXPECT_EQ(spec->steps[1][1].tuple, Tuple{99});
}

TEST(SpecParseTest, MultiArityArgumentsWithSpaces) {
  auto spec = ParseSpecification(R"(
predicate Owns/2
step +Owns(1, 2) -Owns(3,4)
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->steps.size(), 1u);
  ASSERT_EQ(spec->steps[0].size(), 2u);
  EXPECT_EQ(spec->steps[0][0].tuple, (Tuple{1, 2}));
  EXPECT_EQ(spec->steps[0][1].tuple, (Tuple{3, 4}));
  EXPECT_EQ(spec->steps[0][1].kind, UpdateOp::Kind::kDelete);
}

TEST(SpecParseTest, Errors) {
  EXPECT_TRUE(ParseSpecification("predicate Sub").status().IsParseError());
  EXPECT_TRUE(ParseSpecification("predicate Sub/zero").status().IsParseError());
  EXPECT_TRUE(ParseSpecification("constant x").status().IsParseError());
  EXPECT_TRUE(ParseSpecification("frobnicate all").status().IsParseError());
  EXPECT_TRUE(ParseSpecification("constraint a forall x . true")
                  .status()
                  .IsParseError());  // missing ':'
  EXPECT_TRUE(ParseSpecification("predicate Sub/1\nstep +Nope(1)")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseSpecification("predicate Sub/1\nstep +Sub(1, 2)")
                  .status()
                  .IsParseError());  // arity mismatch
  EXPECT_TRUE(ParseSpecification("predicate Sub/1\nstep Sub(1)")
                  .status()
                  .IsParseError());  // missing +/-
  // Bad constraint formula surfaces with its name.
  auto bad = ParseSpecification("predicate Sub/1\nconstraint c : Sub(");
  EXPECT_TRUE(bad.status().IsParseError());
  EXPECT_NE(bad.status().message().find("(c)"), std::string::npos);
}

TEST(SpecReplayTest, EndToEndVerdicts) {
  auto spec = ParseSpecification(kOrdersSpec);
  ASSERT_TRUE(spec.ok());
  auto replay = Replay(*spec);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->states_applied, 4u);
  EXPECT_TRUE(replay->any_violation);

  // Collect verdicts per (constraint, time).
  auto verdict_at = [&](const std::string& name, size_t t) -> std::string {
    for (const auto& ev : replay->events) {
      if (ev.constraint == name && ev.time == t) return ev.verdict;
    }
    return "(none)";
  };
  EXPECT_EQ(verdict_at("submit_once", 0), "ok");
  EXPECT_EQ(verdict_at("submit_once", 2), "ok");
  EXPECT_EQ(verdict_at("submit_once", 3), "PERMANENTLY VIOLATED");
  EXPECT_EQ(verdict_at("audited", 2), "ok");
  // Trigger fires only at the resubmission state (theta x=1).
  EXPECT_EQ(verdict_at("dup_alert", 2), "(none)");
  EXPECT_NE(verdict_at("dup_alert", 3).find("fired"), std::string::npos);
  EXPECT_NE(verdict_at("dup_alert", 3).find("x=1"), std::string::npos);
}

TEST(SpecReplayTest, CleanStreamReportsNoViolation) {
  auto spec = ParseSpecification(R"(
predicate Sub/1
constraint once : forall x . G (Sub(x) -> X G !Sub(x))
step +Sub(1)
step -Sub(1) +Sub(2)
step -Sub(2)
)");
  ASSERT_TRUE(spec.ok());
  auto replay = Replay(*spec);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->any_violation);
  for (const auto& ev : replay->events) EXPECT_EQ(ev.verdict, "ok");
}

TEST(SpecReplayTest, UnsupportedConstraintSurfacesAtReplay) {
  auto spec = ParseSpecification(R"(
predicate Sub/1
constraint live : forall x . F Sub(x)
step +Sub(1)
)");
  ASSERT_TRUE(spec.ok());
  auto replay = Replay(*spec);
  EXPECT_TRUE(replay.status().IsNotSupported());
}

}  // namespace
}  // namespace spec
}  // namespace tic
