// Tests for the Theorem 4.1 grounding: the propositional language L_D, the
// formula phi_D, the word w_D, Axiom_D fidelity, size accounting, and the
// decoding tables.

#include <gtest/gtest.h>

#include "checker/grounding.h"
#include "fotl/parser.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"

namespace tic {
namespace checker {
namespace {

class GroundingTest : public ::testing::Test {
 protected:
  GroundingTest() {
    auto v = std::make_shared<Vocabulary>();
    sub_ = *v->AddPredicate("Sub", 1);
    rel_ = *v->AddPredicate("Rel", 2);
    c_ = *v->AddConstant("c");
    vocab_ = v;
    fac_ = std::make_unique<fotl::FormulaFactory>(vocab_);
    history_ = std::make_unique<History>(*History::Create(vocab_, {5}));
  }

  fotl::Formula Parse_(const std::string& s) { return *fotl::Parse(fac_.get(), s); }

  VocabularyPtr vocab_;
  PredicateId sub_, rel_;
  ConstantId c_;
  std::unique_ptr<fotl::FormulaFactory> fac_;
  std::unique_ptr<History> history_;
};

TEST_F(GroundingTest, GroundElemCoding) {
  GroundElem r = GroundElem::Relevant(7);
  EXPECT_FALSE(r.is_z());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.ToString(), "7");
  GroundElem z = GroundElem::Z(2);
  EXPECT_TRUE(z.is_z());
  EXPECT_EQ(z.z_index(), 2u);
  EXPECT_EQ(z.ToString(), "z3");
}

TEST_F(GroundingTest, InstanceCountIsMToTheK) {
  DatabaseState* s = history_->AppendEmptyState();
  ASSERT_TRUE(s->Insert(sub_, {1}).ok());
  ASSERT_TRUE(s->Insert(sub_, {2}).ok());
  // R_D = {1, 2, 5(constant)}; k = 2 -> |M| = 5, instances = 25.
  auto g = GroundUniversal(*fac_, Parse_("forall x y . Sub(x) -> X !Sub(y)"),
                           *history_);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->stats.relevant_size, 3u);
  EXPECT_EQ(g->stats.num_external_vars, 2u);
  EXPECT_EQ(g->stats.num_instances, 25u);
  EXPECT_EQ(g->num_z, 2u);
  EXPECT_EQ(g->relevant, (std::vector<Value>{1, 2, 5}));
}

TEST_F(GroundingTest, WordReflectsHistory) {
  DatabaseState* s0 = history_->AppendEmptyState();
  ASSERT_TRUE(s0->Insert(sub_, {1}).ok());
  DatabaseState* s1 = history_->AppendEmptyState();
  ASSERT_TRUE(s1->Insert(sub_, {2}).ok());
  auto g = GroundUniversal(*fac_, Parse_("forall x . Sub(x) -> X G !Sub(x)"),
                           *history_);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->word.size(), 2u);
  ptl::PropId sub1, sub2;
  ASSERT_TRUE(g->prop_vocab->Lookup("Sub(1)", &sub1));
  ASSERT_TRUE(g->prop_vocab->Lookup("Sub(2)", &sub2));
  EXPECT_TRUE(g->word[0].Get(sub1));
  EXPECT_FALSE(g->word[0].Get(sub2));
  EXPECT_FALSE(g->word[1].Get(sub1));
  EXPECT_TRUE(g->word[1].Get(sub2));
}

TEST_F(GroundingTest, SimplifiedModeFoldsEqualitiesAndZAtoms) {
  history_->AppendEmptyState();
  // forall x y . x = y -> (Sub(x) -> Sub(y)) is a tautology after folding:
  // instances with x == y fold the implication to true; x != y folds x = y to
  // false. phi_D should be the constant true.
  auto g = GroundUniversal(
      *fac_, Parse_("forall x y . x = y -> (Sub(x) -> Sub(y))"), *history_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->phi_d->kind(), ptl::Kind::kTrue);
}

TEST_F(GroundingTest, ConstantsResolveToTheirInterpretation) {
  DatabaseState* s = history_->AppendEmptyState();
  ASSERT_TRUE(s->Insert(sub_, {5}).ok());  // the constant's element
  auto g = GroundUniversal(*fac_, Parse_("forall x . Sub(c) -> X !Sub(x)"),
                           *history_);
  ASSERT_TRUE(g.ok());
  ptl::PropId sub5;
  ASSERT_TRUE(g->prop_vocab->Lookup("Sub(5)", &sub5));
  EXPECT_TRUE(g->word[0].Get(sub5));
}

TEST_F(GroundingTest, DecodingTableOnlyNamesRelevantTuples) {
  DatabaseState* s = history_->AppendEmptyState();
  ASSERT_TRUE(s->Insert(rel_, {1, 2}).ok());
  auto g = GroundUniversal(
      *fac_, Parse_("forall x y . Rel(x, y) -> X !Rel(y, x)"), *history_);
  ASSERT_TRUE(g.ok());
  for (const auto& [letter, atom] : g->letter_to_atom) {
    (void)letter;
    for (Value v : atom.args) EXPECT_GE(v, 0);
  }
  // Decode a propositional state back to a database state.
  ptl::PropId rel21;
  ASSERT_TRUE(g->prop_vocab->Lookup("Rel(2,1)", &rel21));
  ptl::PropState w;
  w.Set(rel21, true);
  auto decoded = DecodePropState(*g, vocab_, w);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Holds(rel_, {2, 1}));
  EXPECT_FALSE(decoded->Holds(rel_, {1, 2}));
}

TEST_F(GroundingTest, LiteralModeEmitsAxiomD) {
  DatabaseState* s = history_->AppendEmptyState();
  ASSERT_TRUE(s->Insert(sub_, {1}).ok());
  GroundingOptions lit;
  lit.mode = GroundingMode::kLiteral;
  fotl::Formula phi = Parse_("forall x . Sub(x) -> X G !Sub(x)");
  auto g = GroundUniversal(*fac_, phi, *history_, {}, lit);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto g_simple = GroundUniversal(*fac_, phi, *history_);
  ASSERT_TRUE(g_simple.ok());
  // Axiom_D makes the literal formula strictly bigger and introduces equality
  // letters eq(a,b).
  EXPECT_GT(g->stats.phi_d_size, g_simple->stats.phi_d_size);
  ptl::PropId eq;
  EXPECT_TRUE(g->prop_vocab->Lookup("eq(1,1)", &eq));
  EXPECT_TRUE(g->word[0].Get(eq));  // reflexivity holds in w_D
  ptl::PropId eq_z;
  EXPECT_TRUE(g->prop_vocab->Lookup("eq(z1,z1)", &eq_z));
  EXPECT_TRUE(g->word[0].Get(eq_z));
}

TEST_F(GroundingTest, RejectsNonUniversal) {
  history_->AppendEmptyState();
  auto g1 = GroundUniversal(
      *fac_, Parse_("forall x . G (exists y . Rel(x, y))"), *history_);
  EXPECT_TRUE(g1.status().IsNotSupported());
  auto g2 = GroundUniversal(*fac_, Parse_("exists x . G Sub(x)"), *history_);
  EXPECT_TRUE(g2.status().IsNotSupported());
  // Past operators are not biquantified.
  auto g3 =
      GroundUniversal(*fac_, Parse_("forall x . G (Sub(x) -> O Sub(x))"), *history_);
  EXPECT_TRUE(g3.status().IsNotSupported());
}

TEST_F(GroundingTest, RejectsBuiltins) {
  auto v2 = std::make_shared<Vocabulary>();
  ASSERT_TRUE(v2->AddPredicate("p", 1).ok());
  ASSERT_TRUE(v2->AddBuiltin("leq", Builtin::kLessEq).ok());
  fotl::FormulaFactory fac2(v2);
  History h2 = *History::Create(v2);
  h2.AppendEmptyState();
  auto f = fotl::Parse(&fac2, "forall x y . leq(x, y) -> p(x)");
  ASSERT_TRUE(f.ok());
  auto g = GroundUniversal(fac2, *f, h2);
  EXPECT_TRUE(g.status().IsNotSupported());
}

TEST_F(GroundingTest, InstanceBudgetEnforced) {
  DatabaseState* s = history_->AppendEmptyState();
  for (Value v = 0; v < 20; ++v) ASSERT_TRUE(s->Insert(sub_, {v}).ok());
  GroundingOptions opts;
  opts.max_instances = 100;  // |M|^3 = 24^3 >> 100
  auto g = GroundUniversal(
      *fac_, Parse_("forall x y z . Sub(x) -> X (!Sub(y) | !Sub(z))"),
      *history_, {}, opts);
  EXPECT_TRUE(g.status().IsResourceExhausted());
}

TEST_F(GroundingTest, BindingValuesJoinTheRelevantSet) {
  history_->AppendEmptyState();
  fotl::Formula cond = Parse_("Sub(v) -> X !Sub(v)");
  fotl::VarId v = fac_->InternVar("v");
  auto g = GroundUniversal(*fac_, cond, *history_, {{v, 99}});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(std::binary_search(g->relevant.begin(), g->relevant.end(), 99));
  ptl::PropId sub99;
  EXPECT_TRUE(g->prop_vocab->Lookup("Sub(99)", &sub99));
}

TEST_F(GroundingTest, SizeBoundHolds) {
  // |phi_D| = O((|phi| * |R_D|)^max(k, l)) — check the concrete bound on a
  // family of growing domains.
  fotl::Formula phi = Parse_("forall x . Sub(x) -> X G !Sub(x)");
  uint64_t phi_size = phi->size();
  for (int n : {1, 4, 8}) {
    History h = *History::Create(vocab_, {5});
    DatabaseState* s = h.AppendEmptyState();
    for (Value v = 0; v < n; ++v) ASSERT_TRUE(s->Insert(sub_, {v}).ok());
    auto g = GroundUniversal(*fac_, phi, h);
    ASSERT_TRUE(g.ok());
    uint64_t bound = (phi_size * g->stats.relevant_size + phi_size) *
                     (g->stats.relevant_size + 1);  // generous constant
    EXPECT_LE(g->stats.phi_d_size, bound * 4);
    // Hash-consing: distinct DAG nodes grow far slower than the tree size.
    EXPECT_LE(g->stats.phi_d_dag_nodes, g->stats.phi_d_size);
  }
}

}  // namespace
}  // namespace checker
}  // namespace tic
