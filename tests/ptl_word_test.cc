// Tests for ultimately periodic propositional words and their evaluator.

#include <gtest/gtest.h>

#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace {

class WordTest : public ::testing::Test {
 protected:
  WordTest() : vocab_(std::make_shared<PropVocabulary>()), fac_(vocab_) {
    p_id_ = vocab_->Intern("p");
    q_id_ = vocab_->Intern("q");
    p_ = fac_.Atom(p_id_);
    q_ = fac_.Atom(q_id_);
  }

  PropState S(bool p, bool q) {
    PropState s;
    s.Set(p_id_, p);
    s.Set(q_id_, q);
    return s;
  }

  bool Eval(const UltimatelyPeriodicWord& w, Formula f, size_t pos = 0) {
    auto res = Evaluate(w, f, pos);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() && *res;
  }

  PropVocabularyPtr vocab_;
  Factory fac_;
  PropId p_id_, q_id_;
  Formula p_, q_;
};

TEST_F(WordTest, StateIndexing) {
  UltimatelyPeriodicWord w{{S(true, false)}, {S(false, true), S(false, false)}};
  EXPECT_TRUE(w.StateAt(0).Get(p_id_));
  EXPECT_TRUE(w.StateAt(1).Get(q_id_));
  EXPECT_FALSE(w.StateAt(2).Get(q_id_));
  EXPECT_TRUE(w.StateAt(3).Get(q_id_));   // loop wraps
  EXPECT_TRUE(w.StateAt(101).Get(q_id_));
}

TEST_F(WordTest, Booleans) {
  UltimatelyPeriodicWord w{{}, {S(true, false)}};
  EXPECT_TRUE(Eval(w, p_));
  EXPECT_FALSE(Eval(w, q_));
  EXPECT_TRUE(Eval(w, fac_.And(p_, fac_.Not(q_))));
  EXPECT_TRUE(Eval(w, fac_.Implies(q_, p_)));
  EXPECT_TRUE(Eval(w, fac_.Or(q_, p_)));
}

TEST_F(WordTest, NextWrapsIntoLoop) {
  UltimatelyPeriodicWord w{{S(true, false)}, {S(false, true)}};
  EXPECT_TRUE(Eval(w, fac_.Next(q_)));
  EXPECT_TRUE(Eval(w, fac_.Next(fac_.Next(q_))));  // loop self-succeeds
}

TEST_F(WordTest, UntilAcrossPrefixAndLoop) {
  UltimatelyPeriodicWord w{{S(true, false), S(true, false)}, {S(false, true)}};
  EXPECT_TRUE(Eval(w, fac_.Until(p_, q_)));
  // From position 2 (inside loop), p no longer holds but q does immediately.
  EXPECT_TRUE(Eval(w, fac_.Until(p_, q_), 2));
}

TEST_F(WordTest, UntilFailsWhenGoalNeverComes) {
  UltimatelyPeriodicWord w{{}, {S(true, false)}};
  EXPECT_FALSE(Eval(w, fac_.Until(p_, q_)));
  EXPECT_FALSE(Eval(w, fac_.Eventually(q_)));
  EXPECT_TRUE(Eval(w, fac_.Always(p_)));
}

TEST_F(WordTest, ReleaseSemantics) {
  // q R p on p-only loop: true (p forever, never released).
  UltimatelyPeriodicWord w{{}, {S(true, false)}};
  EXPECT_TRUE(Eval(w, fac_.Release(q_, p_)));
  // On a word where p stops before q appears: false.
  UltimatelyPeriodicWord w2{{S(true, false)}, {S(false, false)}};
  EXPECT_FALSE(Eval(w2, fac_.Release(q_, p_)));
  // Released at the first state: q & p there, then anything.
  UltimatelyPeriodicWord w3{{S(true, true)}, {S(false, false)}};
  EXPECT_TRUE(Eval(w3, fac_.Release(q_, p_)));
}

TEST_F(WordTest, GFandFG) {
  UltimatelyPeriodicWord alt{{}, {S(true, false), S(false, false)}};
  EXPECT_TRUE(Eval(alt, fac_.Always(fac_.Eventually(p_))));
  EXPECT_FALSE(Eval(alt, fac_.Eventually(fac_.Always(p_))));
  UltimatelyPeriodicWord stable{{S(false, false)}, {S(true, false)}};
  EXPECT_TRUE(Eval(stable, fac_.Eventually(fac_.Always(p_))));
}

TEST_F(WordTest, ErrorCases) {
  UltimatelyPeriodicWord empty_loop{{S(true, false)}, {}};
  EXPECT_TRUE(Evaluate(empty_loop, p_).status().IsInvalidArgument());
  UltimatelyPeriodicWord w{{}, {S(true, false)}};
  EXPECT_TRUE(Evaluate(w, p_, 5).status().IsOutOfRange());
}

TEST_F(WordTest, PropStateSetUnset) {
  PropState s;
  EXPECT_FALSE(s.Get(p_id_));
  s.Set(p_id_, true);
  EXPECT_TRUE(s.Get(p_id_));
  s.Set(p_id_, false);
  EXPECT_FALSE(s.Get(p_id_));
  EXPECT_EQ(s, PropState());
}

// Regression for the unordered_set -> sorted inline small-vector port: the
// sorted invariant, equality, and the set-constructor must hold regardless
// of insertion order, across the inline/heap spill boundary, and after
// interleaved erasures.
TEST_F(WordTest, PropStateSpillAndOrderIndependence) {
  const size_t n = 3 * PropState::kInlineTrues;  // well past the inline tier
  PropState ascending, descending;
  std::unordered_set<PropId> trues;
  for (size_t i = 0; i < n; ++i) {
    PropId asc = static_cast<PropId>(2 * i);
    PropId desc = static_cast<PropId>(2 * (n - 1 - i));
    ascending.Set(asc, true);
    descending.Set(desc, true);
    trues.insert(asc);
  }
  EXPECT_EQ(ascending, descending);
  EXPECT_EQ(ascending, PropState(trues));
  ASSERT_EQ(ascending.trues().size(), n);
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LT(ascending.trues()[i], ascending.trues()[i + 1]);
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ascending.Get(static_cast<PropId>(2 * i)));
    EXPECT_FALSE(ascending.Get(static_cast<PropId>(2 * i + 1)));
  }
  // Copies are independent; erasing every other letter keeps order.
  PropState copy = ascending;
  for (size_t i = 0; i < n; i += 2) copy.Set(static_cast<PropId>(2 * i), false);
  EXPECT_EQ(copy.trues().size(), n / 2);
  for (size_t i = 0; i + 1 < copy.trues().size(); ++i) {
    EXPECT_LT(copy.trues()[i], copy.trues()[i + 1]);
  }
  EXPECT_EQ(ascending.trues().size(), n);
  // Redundant Set calls are no-ops in both directions.
  PropState idem = copy;
  idem.Set(copy.trues()[0], true);
  idem.Set(static_cast<PropId>(1), false);
  EXPECT_EQ(idem, copy);
}

}  // namespace
}  // namespace ptl
}  // namespace tic
