// Tests for the telemetry layer: concurrent counter/histogram increments from
// the thread pool (raced under the TSan preset), span nesting and
// aggregation, Chrome-trace schema validity, the runtime on/off switch, and
// an end-to-end monitor run whose per-phase wall-time split must be visible.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checker/monitor.h"
#include "common/telemetry/json.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "fotl/parser.h"

namespace tic {
namespace telemetry {
namespace {

// Every test starts from a clean slate and leaves telemetry off: the registry
// is process-global, so tests would otherwise see each other's metrics.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceSink(nullptr);
    SetEnabled(true);
    ResetMetrics();
  }
  void TearDown() override {
    SetTraceSink(nullptr);
    SetEnabled(false);
    ResetMetrics();
  }
};

uint64_t CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* FindHistogram(const MetricsSnapshot& snap,
                                   const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

TEST_F(TelemetryTest, CounterConcurrentIncrements) {
  // 4 workers + the caller all hammer one counter; the folded value must be
  // exact. Run under the tsan preset, this is the shard-race check.
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;
  ThreadPool pool(4);
  Counter& c = Registry::Instance().GetCounter("test/concurrent_counter");
  pool.ParallelFor(kTasks, [&](size_t) {
    for (size_t j = 0; j < kPerTask; ++j) c.Add(1);
  });
  EXPECT_EQ(c.Value(), kTasks * kPerTask);
}

TEST_F(TelemetryTest, HistogramConcurrentRecords) {
  constexpr size_t kTasks = 32;
  constexpr size_t kPerTask = 500;
  ThreadPool pool(4);
  Histogram& h = Registry::Instance().GetHistogram("test/concurrent_histogram");
  pool.ParallelFor(kTasks, [&](size_t i) {
    for (size_t j = 0; j < kPerTask; ++j) h.Record(i * kPerTask + j);
  });
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, kTasks * kPerTask);
  uint64_t n = kTasks * kPerTask;
  EXPECT_EQ(d.sum, n * (n - 1) / 2);  // sum of 0..n-1
  EXPECT_EQ(d.max, n - 1);
  EXPECT_GE(d.ApproxPercentile(0.95), d.ApproxPercentile(0.50));
  EXPECT_LE(d.ApproxPercentile(0.99), d.max);
}

TEST_F(TelemetryTest, HistogramBucketsAreBitWidths) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 63u);
}

TEST_F(TelemetryTest, GaugeTracksValueAndMax) {
  Gauge& g = Registry::Instance().GetGauge("test/gauge");
  g.Add(5);
  g.Add(3);
  g.Add(-6);
  EXPECT_EQ(g.Value(), 2);
  EXPECT_EQ(g.Max(), 8);
  g.Set(1);
  EXPECT_EQ(g.Value(), 1);
  EXPECT_EQ(g.Max(), 8);
}

#ifdef TIC_TELEMETRY_ENABLED

TEST_F(TelemetryTest, SpanNestingAggregatesByPath) {
  {
    TIC_SPAN("outer");
    {
      TIC_SPAN("inner");
    }
    {
      TIC_SPAN("inner");
    }
  }
  {
    TIC_SPAN("outer");
  }
  // Same leaf name at the top level is a different path.
  { TIC_SPAN("inner"); }

  MetricsSnapshot snap = CollectMetrics();
  const HistogramData* outer = FindHistogram(snap, "span/outer");
  const HistogramData* nested = FindHistogram(snap, "span/outer/inner");
  const HistogramData* top_inner = FindHistogram(snap, "span/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(top_inner, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_EQ(nested->count, 2u);
  EXPECT_EQ(top_inner->count, 1u);
  // Children cannot outlast their parent.
  EXPECT_GE(outer->sum, nested->sum);

  std::string table = snap.SummaryTable();
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);
}

TEST_F(TelemetryTest, MacrosAreNoOpsWhenDisabled) {
  SetEnabled(false);
  TIC_COUNTER_ADD("test/disabled_counter", 7);
  TIC_HISTOGRAM_RECORD("test/disabled_histogram", 7);
  { TIC_SPAN("disabled_span"); }
  SetEnabled(true);
  MetricsSnapshot snap = CollectMetrics();
  EXPECT_EQ(CounterValue(snap, "test/disabled_counter"), 0u);
  EXPECT_EQ(FindHistogram(snap, "span/disabled_span"), nullptr);
}

TEST_F(TelemetryTest, SpansFromPoolWorkersAggregateAcrossThreads) {
  constexpr size_t kTasks = 16;
  ThreadPool pool(3);
  pool.ParallelFor(kTasks, [&](size_t) { TIC_SPAN("worker_phase"); });
  // On pool workers the span is a thread root (span/worker_phase); iterations
  // drained by the calling thread nest under its ParallelFor span
  // (span/thread_pool.parallel_for/worker_phase). Every iteration must land
  // in exactly one of the two.
  MetricsSnapshot snap = CollectMetrics();
  uint64_t total = 0;
  for (const auto& kv : snap.histograms) {
    if (kv.first == "span/worker_phase" ||
        kv.first == "span/thread_pool.parallel_for/worker_phase") {
      total += kv.second.count;
    }
  }
  EXPECT_EQ(total, kTasks);
}

TEST_F(TelemetryTest, TraceCaptureRoundTripsThroughValidator) {
  auto sink = std::make_shared<TraceSink>();
  SetTraceSink(sink);
  {
    TIC_SPAN("traced \"phase\"\n");  // name needing JSON escaping
    TIC_SPAN("child");
  }
  SetTraceSink(nullptr);
  ASSERT_EQ(sink->size(), 2u);

  std::string text = sink->SerializeChromeTrace();
  std::string error;
  size_t num_events = 0;
  EXPECT_TRUE(ValidateChromeTrace(text, &error, &num_events)) << error;
  EXPECT_EQ(num_events, 2u);

  // The events must carry the span names (inner exits first).
  std::string parse_error;
  auto doc = ParseJson(text, &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array[0].Find("name")->string, "child");
  EXPECT_EQ(events->array[1].Find("name")->string, "traced \"phase\"\n");
}

TEST_F(TelemetryTest, TraceSinkCapsAndCountsDrops) {
  auto sink = std::make_shared<TraceSink>(2);
  SetTraceSink(sink);
  for (int i = 0; i < 5; ++i) {
    TIC_SPAN("capped");
  }
  SetTraceSink(nullptr);
  EXPECT_EQ(sink->size(), 2u);
  EXPECT_EQ(sink->dropped(), 3u);
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(sink->SerializeChromeTrace(), &error)) << error;
}

// End-to-end: a >= 50-update monitor run must produce a per-phase wall-time
// summary with the grounding-free (monitor) phases split out — progression,
// conjunction, sat check, cache lookups — and a Perfetto-loadable trace via
// CheckOptions::trace_sink.
TEST_F(TelemetryTest, MonitorRunProducesPhaseSplitAndTrace) {
  auto v = std::make_shared<Vocabulary>();
  PredicateId sub = *v->AddPredicate("Sub", 1);
  PredicateId fill = *v->AddPredicate("Fill", 1);
  VocabularyPtr vocab = v;
  auto fac = std::make_shared<fotl::FormulaFactory>(vocab);
  fotl::Formula submit_once =
      *fotl::Parse(fac.get(), "forall x . G (Sub(x) -> X G !Sub(x))");

  auto sink = std::make_shared<TraceSink>();
  checker::CheckOptions options;
  options.trace_sink = sink;
  // This test asserts the progression backend's per-update phase split
  // (progress + sat_check every update); the automaton backend collapses
  // steady-state updates to memo lookups and is covered below.
  options.backend = checker::MonitorBackend::kProgression;
  auto m = checker::Monitor::Create(fac, submit_once, {}, options);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  for (int t = 0; t < 60; ++t) {
    Transaction txn;
    txn.push_back(UpdateOp::Insert(sub, {static_cast<Value>(t % 5 + 1)}));
    if (t > 0) txn.push_back(UpdateOp::Insert(fill, {static_cast<Value>((t - 1) % 5 + 1)}));
    txn.push_back(UpdateOp::Delete(sub, {static_cast<Value>(t % 5 + 1)}));
    auto v = (*m)->ApplyTransaction(txn);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
  }
  SetTraceSink(nullptr);

  MetricsSnapshot snap = CollectMetrics();
  const HistogramData* update = FindHistogram(snap, "span/monitor.update");
  const HistogramData* progress =
      FindHistogram(snap, "span/monitor.update/monitor.progress");
  const HistogramData* sat =
      FindHistogram(snap, "span/monitor.update/monitor.sat_check");
  ASSERT_NE(update, nullptr);
  ASSERT_NE(progress, nullptr);
  ASSERT_NE(sat, nullptr);
  EXPECT_EQ(update->count, 60u);
  EXPECT_EQ(progress->count, 60u);
  EXPECT_EQ(sat->count, 60u);
  // The phase split is consistent: children are contained in the update time.
  EXPECT_LE(progress->sum + sat->sum, update->sum);
  EXPECT_GT(CounterValue(snap, "monitor/updates"), 0u);
  EXPECT_GT(CounterValue(snap, "tableau/calls"), 0u);
  EXPECT_GT(CounterValue(snap, "verdict_cache/hits") +
                CounterValue(snap, "verdict_cache/misses"),
            0u);

  // The summary table shows the grounding/tableau/cache split by name.
  std::string table = snap.SummaryTable();
  EXPECT_NE(table.find("monitor.update"), std::string::npos);
  EXPECT_NE(table.find("monitor.sat_check"), std::string::npos);
  EXPECT_NE(table.find("verdict_cache"), std::string::npos);

  // The trace is schema-valid and non-trivial.
  std::string error;
  size_t num_events = 0;
  ASSERT_TRUE(ValidateChromeTrace(sink->SerializeChromeTrace(), &error, &num_events))
      << error;
  EXPECT_GE(num_events, 60u);

  // The flat JSON export parses and carries the span metrics.
  std::string json = snap.ToJson();
  std::string parse_error;
  auto doc = ParseJson(json, &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  EXPECT_NE(doc->Find("span/monitor.update/count"), nullptr);
}

TEST_F(TelemetryTest, AutomatonBackendEmitsStepSpansAndMemoCounters) {
  auto v = std::make_shared<Vocabulary>();
  PredicateId sub = *v->AddPredicate("Sub", 1);
  PredicateId fill = *v->AddPredicate("Fill", 1);
  VocabularyPtr vocab = v;
  auto fac = std::make_shared<fotl::FormulaFactory>(vocab);
  fotl::Formula submit_once =
      *fotl::Parse(fac.get(), "forall x . G (Sub(x) -> X G !Sub(x))");

  auto sink = std::make_shared<TraceSink>();
  checker::CheckOptions options;
  options.trace_sink = sink;
  // The monitor.automaton_step span belongs to the joint residual-graph path;
  // cohort lockstep stepping emits monitor.cohort_step instead.
  options.cohort_stepping = false;
  auto m = checker::Monitor::Create(fac, submit_once, {}, options);
  ASSERT_TRUE(m.ok()) << m.status().ToString();

  for (int t = 0; t < 60; ++t) {
    Transaction txn;
    txn.push_back(UpdateOp::Insert(sub, {static_cast<Value>(t % 5 + 1)}));
    if (t > 0) txn.push_back(UpdateOp::Insert(fill, {static_cast<Value>((t - 1) % 5 + 1)}));
    txn.push_back(UpdateOp::Delete(sub, {static_cast<Value>(t % 5 + 1)}));
    auto verdict = (*m)->ApplyTransaction(txn);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  }
  SetTraceSink(nullptr);

  MetricsSnapshot snap = CollectMetrics();
  const HistogramData* update = FindHistogram(snap, "span/monitor.update");
  const HistogramData* step =
      FindHistogram(snap, "span/monitor.update/monitor.automaton_step");
  ASSERT_NE(update, nullptr);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(update->count, 60u);
  // Every update after the compiling ones is a single automaton step.
  EXPECT_GT(step->count, 0u);
  uint64_t hits = CounterValue(snap, "automaton/transition_memo_hits");
  uint64_t misses = CounterValue(snap, "automaton/transition_memo_misses");
  EXPECT_GT(hits + misses, 0u);
  // The 5-element round-robin revisits database states, so the memo must hit.
  EXPECT_GT(hits, misses);

  std::string error;
  size_t num_events = 0;
  ASSERT_TRUE(ValidateChromeTrace(sink->SerializeChromeTrace(), &error, &num_events))
      << error;
  EXPECT_GE(num_events, 60u);
}

// Pinned percentile regression: 1000 uniform samples 0..999. The old
// bucket-upper-bound estimator returned the bucket ceiling (p50 = 511,
// p95 = p99 = 1023 — off by up to 2x); with within-bucket interpolation the
// estimates must land within one interpolation step of the exact ranks.
TEST_F(TelemetryTest, PercentilesInterpolateWithinLogBuckets) {
  Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v);
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.max, 999u);
  EXPECT_NEAR(static_cast<double>(d.ApproxPercentile(0.50)), 499.0, 8.0);
  EXPECT_NEAR(static_cast<double>(d.ApproxPercentile(0.95)), 949.0, 8.0);
  EXPECT_NEAR(static_cast<double>(d.ApproxPercentile(0.99)), 989.0, 8.0);
  EXPECT_LE(d.ApproxPercentile(1.0), d.max);
}

// Satellite coverage for the Chrome-trace exporter under concurrency: pool
// workers emit NESTED spans in parallel through one shared sink. Within each
// tid the span intervals must form a proper stack — every pair of spans
// either disjoint or fully nested, never partially overlapping — and the
// serialized trace must still validate. Run under the tsan preset.
TEST_F(TelemetryTest, ConcurrentNestedSpansKeepPerTidNesting) {
  auto sink = std::make_shared<TraceSink>();
  SetTraceSink(sink);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 12; ++i) {
          TIC_SPAN("outer");
          {
            TIC_SPAN("mid");
            { TIC_SPAN("leaf"); }
            { TIC_SPAN("leaf"); }
          }
          { TIC_SPAN("mid"); }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  SetTraceSink(nullptr);
  ASSERT_EQ(sink->size(), 4u * 12u * 5u);

  std::string text = sink->SerializeChromeTrace();
  std::string error;
  size_t num_events = 0;
  ASSERT_TRUE(ValidateChromeTrace(text, &error, &num_events)) << error;
  ASSERT_EQ(num_events, sink->size());

  std::string parse_error;
  auto doc = ParseJson(text, &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  struct Span {
    std::string name;
    double ts, dur;
  };
  std::map<int, std::vector<Span>> by_tid;
  for (const JsonValue& e : doc->Find("traceEvents")->array) {
    by_tid[static_cast<int>(e.Find("tid")->number)].push_back(
        Span{e.Find("name")->string, e.Find("ts")->number,
             e.Find("dur")->number});
  }
  ASSERT_GE(by_tid.size(), 2u) << "spans did not come from multiple threads";
  // Serialization order is completion order, so within a tid a child precedes
  // its enclosing parent, and ts must be non-decreasing along same-name
  // sibling spans. The structural check below subsumes both: no partial
  // interval overlap within a tid (µs rounding gets a small tolerance).
  constexpr double kTolUs = 0.0015;
  for (const auto& [tid, spans] : by_tid) {
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        const Span& a = spans[i];
        const Span& b = spans[j];
        const double a_end = a.ts + a.dur, b_end = b.ts + b.dur;
        const bool disjoint =
            a_end <= b.ts + kTolUs || b_end <= a.ts + kTolUs;
        const bool a_in_b =
            a.ts >= b.ts - kTolUs && a_end <= b_end + kTolUs;
        const bool b_in_a =
            b.ts >= a.ts - kTolUs && b_end <= a_end + kTolUs;
        ASSERT_TRUE(disjoint || a_in_b || b_in_a)
            << "tid " << tid << ": interleaved spans " << a.name << " ["
            << a.ts << ", " << a_end << ") and " << b.name << " [" << b.ts
            << ", " << b_end << ")";
      }
    }
  }
}

#else  // !TIC_TELEMETRY_ENABLED

TEST_F(TelemetryTest, CompiledOutMacrosRecordNothing) {
  TIC_COUNTER_ADD("test/off_counter", 7);
  TIC_HISTOGRAM_RECORD("test/off_histogram", 7);
  { TIC_SPAN("off_span"); }
  MetricsSnapshot snap = CollectMetrics();
  EXPECT_EQ(CounterValue(snap, "test/off_counter"), 0u);
  EXPECT_EQ(FindHistogram(snap, "span/off_span"), nullptr);
}

#endif  // TIC_TELEMETRY_ENABLED

TEST_F(TelemetryTest, JsonParserAcceptsAndRejects) {
  std::string error;
  EXPECT_TRUE(ParseJson("{\"a\": [1, 2.5, -3e2, true, false, null]}", &error)
                  .has_value())
      << error;
  EXPECT_TRUE(ParseJson("\"\\u0041\\n\"", &error).has_value()) << error;
  EXPECT_FALSE(ParseJson("{\"a\": 01}", &error).has_value());
  EXPECT_FALSE(ParseJson("[1,]", &error).has_value());
  EXPECT_FALSE(ParseJson("{} garbage", &error).has_value());
  EXPECT_FALSE(ParseJson("\"unterminated", &error).has_value());
  std::string deep(100, '[');
  EXPECT_FALSE(ParseJson(deep, &error).has_value());
}

TEST_F(TelemetryTest, ValidateChromeTraceRejectsWrongShapes) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace("[]", &error));
  EXPECT_FALSE(ValidateChromeTrace("{}", &error));
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\": 3}", &error));
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\"}]}", &error));
  size_t n = 0;
  EXPECT_TRUE(ValidateChromeTrace(
      "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\", \"ts\": 0, "
      "\"dur\": 1, \"pid\": 1, \"tid\": 0}, {\"ph\": \"M\", \"name\": "
      "\"meta\"}]}",
      &error, &n))
      << error;
  EXPECT_EQ(n, 1u);
}

TEST_F(TelemetryTest, BuildInfoIsPopulated) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.build_type.empty());
  std::string error;
  auto doc = ParseJson(BuildInfoJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_NE(doc->Find("git_sha"), nullptr);
  EXPECT_NE(doc->Find("build_type"), nullptr);
  EXPECT_NE(doc->Find("telemetry"), nullptr);
#ifdef TIC_TELEMETRY_ENABLED
  EXPECT_TRUE(doc->Find("telemetry")->boolean);
#else
  EXPECT_FALSE(doc->Find("telemetry")->boolean);
#endif
}

TEST_F(TelemetryTest, RegistryResetZeroesButKeepsNames) {
  Registry::Instance().GetCounter("test/reset_me").Add(5);
  ResetMetrics();
  MetricsSnapshot snap = CollectMetrics();
  EXPECT_EQ(CounterValue(snap, "test/reset_me"), 0u);
  bool found = false;
  for (const auto& [n, v] : snap.counters) found = found || n == "test/reset_me";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace telemetry
}  // namespace tic
